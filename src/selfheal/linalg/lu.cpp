#include "selfheal/linalg/lu.hpp"

#include <cmath>
#include <stdexcept>

namespace selfheal::linalg {

std::optional<LuDecomposition> LuDecomposition::compute(const Matrix& a,
                                                        double tolerance) {
  if (a.rows() != a.cols()) throw std::invalid_argument("LU: matrix must be square");
  const std::size_t n = a.rows();

  LuDecomposition result;
  result.lu_ = a;
  result.perm_.resize(n);
  for (std::size_t i = 0; i < n; ++i) result.perm_[i] = i;

  Matrix& lu = result.lu_;
  for (std::size_t col = 0; col < n; ++col) {
    // Partial pivot: largest |value| in this column at/below the diagonal.
    std::size_t pivot = col;
    double best = std::fabs(lu(col, col));
    for (std::size_t r = col + 1; r < n; ++r) {
      const double v = std::fabs(lu(r, col));
      if (v > best) {
        best = v;
        pivot = r;
      }
    }
    if (best < tolerance) return std::nullopt;
    if (pivot != col) {
      for (std::size_t c = 0; c < n; ++c) std::swap(lu(pivot, c), lu(col, c));
      std::swap(result.perm_[pivot], result.perm_[col]);
      result.perm_sign_ = -result.perm_sign_;
    }
    for (std::size_t r = col + 1; r < n; ++r) {
      const double factor = lu(r, col) / lu(col, col);
      lu(r, col) = factor;
      for (std::size_t c = col + 1; c < n; ++c) lu(r, c) -= factor * lu(col, c);
    }
  }
  return result;
}

Vector LuDecomposition::solve(const Vector& b) const {
  const std::size_t n = size();
  if (b.size() != n) throw std::invalid_argument("LU solve: size mismatch");

  Vector x(n);
  for (std::size_t i = 0; i < n; ++i) x[i] = b[perm_[i]];

  // Forward substitution (L has unit diagonal).
  for (std::size_t r = 1; r < n; ++r) {
    double acc = x[r];
    for (std::size_t c = 0; c < r; ++c) acc -= lu_(r, c) * x[c];
    x[r] = acc;
  }
  // Backward substitution.
  for (std::size_t r = n; r-- > 0;) {
    double acc = x[r];
    for (std::size_t c = r + 1; c < n; ++c) acc -= lu_(r, c) * x[c];
    x[r] = acc / lu_(r, r);
  }
  return x;
}

double LuDecomposition::determinant() const {
  double det = perm_sign_;
  for (std::size_t i = 0; i < size(); ++i) det *= lu_(i, i);
  return det;
}

std::optional<Vector> solve_linear(const Matrix& a, const Vector& b,
                                   double tolerance) {
  const auto lu = LuDecomposition::compute(a, tolerance);
  if (!lu) return std::nullopt;
  return lu->solve(b);
}

}  // namespace selfheal::linalg
