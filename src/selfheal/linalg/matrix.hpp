// Dense row-major matrix of doubles, sized for CTMC generator matrices
// (the paper's models are at most ~1000 states: a 31x31 STG grid).
#pragma once

#include <cstddef>
#include <initializer_list>
#include <string>
#include <vector>

namespace selfheal::linalg {

using Vector = std::vector<double>;

class Matrix {
 public:
  Matrix() = default;
  Matrix(std::size_t rows, std::size_t cols, double fill = 0.0);
  Matrix(std::initializer_list<std::initializer_list<double>> rows);

  [[nodiscard]] static Matrix identity(std::size_t n);

  [[nodiscard]] std::size_t rows() const noexcept { return rows_; }
  [[nodiscard]] std::size_t cols() const noexcept { return cols_; }

  [[nodiscard]] double& at(std::size_t r, std::size_t c);
  [[nodiscard]] double at(std::size_t r, std::size_t c) const;

  double& operator()(std::size_t r, std::size_t c) noexcept {
    return data_[r * cols_ + c];
  }
  double operator()(std::size_t r, std::size_t c) const noexcept {
    return data_[r * cols_ + c];
  }

  [[nodiscard]] Matrix transposed() const;

  Matrix& operator+=(const Matrix& other);
  Matrix& operator-=(const Matrix& other);
  Matrix& operator*=(double scalar);

  [[nodiscard]] Matrix operator+(const Matrix& other) const;
  [[nodiscard]] Matrix operator-(const Matrix& other) const;
  [[nodiscard]] Matrix operator*(const Matrix& other) const;
  [[nodiscard]] Matrix operator*(double scalar) const;

  /// Row-vector times matrix: (x^T A)^T. Sizes must agree.
  [[nodiscard]] Vector left_multiply(const Vector& x) const;
  /// Matrix times column vector.
  [[nodiscard]] Vector right_multiply(const Vector& x) const;

  /// Max-abs element; useful for norms and convergence checks.
  [[nodiscard]] double max_abs() const noexcept;

  [[nodiscard]] std::string to_string(int precision = 4) const;

 private:
  std::size_t rows_ = 0;
  std::size_t cols_ = 0;
  Vector data_;
};

/// Elementwise helpers on Vector.
[[nodiscard]] double dot(const Vector& a, const Vector& b);
[[nodiscard]] double l1_norm(const Vector& v);
[[nodiscard]] double max_abs(const Vector& v);
void axpy(double alpha, const Vector& x, Vector& y);  // y += alpha * x
void scale(Vector& v, double alpha);

}  // namespace selfheal::linalg
