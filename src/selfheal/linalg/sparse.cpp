#include "selfheal/linalg/sparse.hpp"

#include <algorithm>
#include <stdexcept>

namespace selfheal::linalg {

CsrMatrix CsrMatrix::from_triplets(std::size_t rows, std::size_t cols,
                                   const std::vector<Triplet>& triplets) {
  CsrMatrix m;
  m.cols_ = cols;
  m.row_start_.assign(rows + 1, 0);

  // Counting-sort seal (deps/dependency.cpp idiom): count, prefix-sum,
  // scatter into place, then tidy each row.
  for (const auto& t : triplets) {
    if (t.row >= rows || t.col >= cols) {
      throw std::out_of_range("CsrMatrix::from_triplets: index out of range");
    }
    ++m.row_start_[t.row + 1];
  }
  for (std::size_t r = 0; r < rows; ++r) m.row_start_[r + 1] += m.row_start_[r];
  m.entries_.resize(triplets.size());
  std::vector<std::size_t> cursor(m.row_start_.begin(), m.row_start_.end() - 1);
  for (const auto& t : triplets) {
    m.entries_[cursor[t.row]++] = Entry{t.col, t.value};
  }

  // Sort each row by column and merge duplicates in place.
  std::size_t write = 0;
  std::vector<std::size_t> new_start(rows + 1, 0);
  for (std::size_t r = 0; r < rows; ++r) {
    const std::size_t begin = m.row_start_[r];
    const std::size_t end = m.row_start_[r + 1];
    std::sort(m.entries_.begin() + static_cast<std::ptrdiff_t>(begin),
              m.entries_.begin() + static_cast<std::ptrdiff_t>(end),
              [](const Entry& a, const Entry& b) { return a.col < b.col; });
    new_start[r] = write;
    for (std::size_t k = begin; k < end; ++k) {
      if (write > new_start[r] && m.entries_[write - 1].col == m.entries_[k].col) {
        m.entries_[write - 1].value += m.entries_[k].value;
      } else {
        m.entries_[write++] = m.entries_[k];
      }
    }
  }
  new_start[rows] = write;
  m.entries_.resize(write);
  m.row_start_ = std::move(new_start);
  return m;
}

Vector CsrMatrix::left_multiply(const Vector& x) const {
  if (x.size() != rows()) throw std::invalid_argument("CsrMatrix::left_multiply: size mismatch");
  Vector y(cols_, 0.0);
  for (std::size_t r = 0; r < rows(); ++r) {
    const double xr = x[r];
    if (xr == 0.0) continue;
    for (const auto& e : row(r)) y[e.col] += xr * e.value;
  }
  return y;
}

Vector CsrMatrix::right_multiply(const Vector& x) const {
  if (x.size() != cols_) throw std::invalid_argument("CsrMatrix::right_multiply: size mismatch");
  Vector y(rows(), 0.0);
  for (std::size_t r = 0; r < rows(); ++r) {
    double acc = 0.0;
    for (const auto& e : row(r)) acc += e.value * x[e.col];
    y[r] = acc;
  }
  return y;
}

CsrMatrix CsrMatrix::transposed() const {
  std::vector<Triplet> triplets;
  triplets.reserve(nnz());
  for (std::size_t r = 0; r < rows(); ++r) {
    for (const auto& e : row(r)) {
      triplets.push_back(Triplet{e.col, static_cast<std::uint32_t>(r), e.value});
    }
  }
  return from_triplets(cols_, rows(), triplets);
}

Matrix CsrMatrix::to_dense() const {
  Matrix m(rows(), cols_);
  for (std::size_t r = 0; r < rows(); ++r) {
    for (const auto& e : row(r)) m(r, e.col) += e.value;
  }
  return m;
}

std::vector<std::uint32_t> reverse_cuthill_mckee(const CsrMatrix& a) {
  const std::size_t n = a.rows();
  if (a.cols() != n) throw std::invalid_argument("reverse_cuthill_mckee: matrix not square");

  // Symmetrized adjacency (pattern of A + A^T, diagonal dropped).
  std::vector<std::vector<std::uint32_t>> adj(n);
  for (std::size_t r = 0; r < n; ++r) {
    for (const auto& e : a.row(r)) {
      if (e.col == r) continue;
      adj[r].push_back(e.col);
      adj[e.col].push_back(static_cast<std::uint32_t>(r));
    }
  }
  for (auto& nb : adj) {
    std::sort(nb.begin(), nb.end());
    nb.erase(std::unique(nb.begin(), nb.end()), nb.end());
  }

  std::vector<std::uint32_t> order;
  order.reserve(n);
  std::vector<char> seen(n, 0);
  std::vector<std::uint32_t> frontier;
  for (std::size_t start = 0; start < n; ++start) {
    if (seen[start]) continue;
    // Minimum-degree unseen vertex roots this component.
    std::uint32_t root = static_cast<std::uint32_t>(start);
    for (std::size_t v = start + 1; v < n; ++v) {
      if (!seen[v] && adj[v].size() < adj[root].size()) root = static_cast<std::uint32_t>(v);
    }
    seen[root] = 1;
    frontier.assign(1, root);
    for (std::size_t head = 0; head < frontier.size(); ++head) {
      const std::uint32_t v = frontier[head];
      order.push_back(v);
      auto nb = adj[v];  // copy: sort by degree without disturbing adj
      std::sort(nb.begin(), nb.end(), [&](std::uint32_t x, std::uint32_t y) {
        return adj[x].size() != adj[y].size() ? adj[x].size() < adj[y].size() : x < y;
      });
      for (std::uint32_t w : nb) {
        if (!seen[w]) {
          seen[w] = 1;
          frontier.push_back(w);
        }
      }
    }
  }
  std::reverse(order.begin(), order.end());
  return order;
}

std::size_t bandwidth_under(const CsrMatrix& a, const std::vector<std::uint32_t>& order) {
  const std::size_t n = a.rows();
  if (a.cols() != n || order.size() != n) {
    throw std::invalid_argument("bandwidth_under: size mismatch");
  }
  std::vector<std::uint32_t> position(n);
  for (std::size_t i = 0; i < n; ++i) position[order[i]] = static_cast<std::uint32_t>(i);
  std::size_t band = 0;
  for (std::size_t r = 0; r < n; ++r) {
    const std::uint32_t pr = position[r];
    for (const auto& e : a.row(r)) {
      const std::uint32_t pc = position[e.col];
      band = std::max<std::size_t>(band, pr > pc ? pr - pc : pc - pr);
    }
  }
  return band;
}

}  // namespace selfheal::linalg
