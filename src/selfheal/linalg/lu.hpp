// LU decomposition with partial pivoting and a linear-system solver.
// Used by the CTMC steady-state checker (the primary path is GTH, which
// is subtraction-free; LU provides an independent numerical witness).
#pragma once

#include <optional>

#include "selfheal/linalg/matrix.hpp"

namespace selfheal::linalg {

/// PA = LU factorization. Fails (returns nullopt) on singular matrices
/// (pivot below `tolerance`).
class LuDecomposition {
 public:
  [[nodiscard]] static std::optional<LuDecomposition> compute(
      const Matrix& a, double tolerance = 1e-12);

  /// Solves A x = b for x.
  [[nodiscard]] Vector solve(const Vector& b) const;

  [[nodiscard]] double determinant() const;
  [[nodiscard]] std::size_t size() const noexcept { return lu_.rows(); }

 private:
  LuDecomposition() = default;
  Matrix lu_;
  std::vector<std::size_t> perm_;
  int perm_sign_ = 1;
};

/// Convenience wrapper: solves A x = b, nullopt if singular.
[[nodiscard]] std::optional<Vector> solve_linear(const Matrix& a, const Vector& b,
                                                 double tolerance = 1e-12);

}  // namespace selfheal::linalg
