// Dependence relations among committed task instances (Section II.B-D).
//
// Precedence t_i < t_j is log order. Over that order we derive, per
// Definition 1:
//   * flow dependence   t_i ->_f t_j : t_j reads a data object whose
//     LAST writer before t_j is t_i (writes between t_i and t_j mask the
//     dependence -- the "union of intermediate writes" in the paper's
//     formula is read as the overwrite mask, which is what damage
//     propagation needs: reading an overwritten value cannot infect);
//   * anti-flow         t_i ->_a t_j : t_j is the next writer of an
//     object after t_i read it;
//   * output            t_i ->_o t_j : t_j is the next writer of an
//     object after t_i wrote it.
// and, from the workflow specification (Section II.D):
//   * control           t_i ->_c t_j : same run, task(t_i) is a branch
//     node dominating task(t_j), task(t_j) avoidable. Edges are emitted
//     from the most recent instance of each dominant node, and because
//     dominant_nodes() walks the full dominator chain the emitted edges
//     already realise the transitive relation ->_c*.
#pragma once

#include <cstdint>
#include <vector>

#include "selfheal/engine/system_log.hpp"
#include "selfheal/wfspec/workflow_spec.hpp"

namespace selfheal::deps {

using engine::InstanceId;

enum class DepKind : std::uint8_t { kFlow, kAnti, kOutput, kControl };

[[nodiscard]] const char* to_string(DepKind kind);

struct DepEdge {
  InstanceId from = engine::kInvalidInstance;
  InstanceId to = engine::kInvalidInstance;
  DepKind kind = DepKind::kFlow;
  /// The object carrying a data dependence; kInvalidObject for control.
  wfspec::ObjectId object = wfspec::kInvalidObject;

  bool operator==(const DepEdge&) const = default;
};

/// Builds the dependence graph over the EFFECTIVE execution of a system
/// log (SystemLog::effective(): originals before any recovery, the
/// repaired schedule afterwards). Construction is O(log size x accesses).
class DependencyAnalyzer {
 public:
  DependencyAnalyzer(const engine::SystemLog& log,
                     const std::vector<const wfspec::WorkflowSpec*>& spec_of_run);

  [[nodiscard]] const std::vector<DepEdge>& edges() const noexcept { return edges_; }

  /// Outgoing / incoming edges of an instance (indices into edges()).
  [[nodiscard]] std::vector<DepEdge> edges_from(InstanceId i) const;
  [[nodiscard]] std::vector<DepEdge> edges_to(InstanceId i) const;

  [[nodiscard]] bool depends(InstanceId from, InstanceId to, DepKind kind) const;

  /// Forward closure over flow edges from `seeds` -- the paper's
  /// t_i ->_f^* t_j damage spreading (Theorem 1 condition 3). The result
  /// contains the seeds and is sorted by instance id (= commit order).
  [[nodiscard]] std::vector<InstanceId> flow_closure(
      const std::vector<InstanceId>& seeds) const;

  /// Forward closure over BOTH flow and control edges (used to bound the
  /// set of instances recovery may touch at all).
  [[nodiscard]] std::vector<InstanceId> flow_control_closure(
      const std::vector<InstanceId>& seeds) const;

  /// Instances control-dependent (transitively) on `branch`.
  [[nodiscard]] std::vector<InstanceId> controlled_by(InstanceId branch) const;

  [[nodiscard]] std::size_t instance_count() const noexcept {
    return out_.size();
  }

 private:
  template <typename Filter>
  [[nodiscard]] std::vector<InstanceId> closure(const std::vector<InstanceId>& seeds,
                                                Filter keep) const;

  std::vector<DepEdge> edges_;
  std::vector<std::vector<std::size_t>> out_;  // per instance: edge indices
  std::vector<std::vector<std::size_t>> in_;
};

/// Graphviz rendering of the dependence graph over the effective
/// execution: nodes are task instances (malicious ones highlighted),
/// edges coloured by kind and labelled with the carrying object.
[[nodiscard]] std::string to_dot(
    const DependencyAnalyzer& deps, const engine::SystemLog& log,
    const std::vector<const wfspec::WorkflowSpec*>& spec_of_run);

}  // namespace selfheal::deps
