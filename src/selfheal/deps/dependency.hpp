// Dependence relations among committed task instances (Section II.B-D).
//
// Precedence t_i < t_j is log order. Over that order we derive, per
// Definition 1:
//   * flow dependence   t_i ->_f t_j : t_j reads a data object whose
//     LAST writer before t_j is t_i (writes between t_i and t_j mask the
//     dependence -- the "union of intermediate writes" in the paper's
//     formula is read as the overwrite mask, which is what damage
//     propagation needs: reading an overwritten value cannot infect);
//   * anti-flow         t_i ->_a t_j : t_j is the next writer of an
//     object after t_i read it;
//   * output            t_i ->_o t_j : t_j is the next writer of an
//     object after t_i wrote it.
// and, from the workflow specification (Section II.D):
//   * control           t_i ->_c t_j : same run, task(t_i) is a branch
//     node dominating task(t_j), task(t_j) avoidable. Edges are emitted
//     from the most recent instance of each dominant node, and because
//     dominant_nodes() walks the full dominator chain the emitted edges
//     already realise the transitive relation ->_c*.
//
// The analyzer is INCREMENTAL and STREAMING: a long-lived instance
// tracks a growing SystemLog and ingests only the new entries per
// refresh() -- O(their accesses). Recovery entries (undo/redo/fresh) no
// longer invalidate the graph: because every dependence edge points
// from an earlier logical slot to a later one, a recovery round can
// only change the schedule at slots >= the earliest entry it touched,
// so refresh() splices the graph -- truncate the suffix from that slot,
// retract its taint tags, and re-ingest the repaired suffix in schedule
// order. The result is PHYSICALLY identical (same edge array, byte for
// byte) to a scratch rebuild over the new effective schedule; a full
// rebuild survives only as a checked fallback, counted in
// `deps.full_rebuilds`.
//
// Damage taint is propagated ONLINE as entries are ingested (SLEUTH-
// style streaming tag propagation): an instance is tainted iff it is
// flow-reachable from a live malicious entry, maintained at O(1) per
// ingested edge and retracted when recovery evicts the source. An alert
// that covers all live malicious entries reads its damage frontier
// straight off the materialized taint set -- O(frontier), no closure
// walk over clean regions.
//
// All per-object and per-(run, task) sweep state is kept in dense
// vectors keyed by the interned ids, adjacency is flat CSR (plus O(1)-
// append linked chains), and closures reuse an epoch-stamped visited
// array, so query cost scales with the damage closure, not the log.
//
// Queries mutate reusable scratch state (epoch stamps, worklist):
// instances are NOT safe for concurrent use from multiple threads.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "selfheal/engine/system_log.hpp"
#include "selfheal/wfspec/workflow_spec.hpp"

namespace selfheal::deps {

using engine::InstanceId;

enum class DepKind : std::uint8_t { kFlow, kAnti, kOutput, kControl };

[[nodiscard]] const char* to_string(DepKind kind);

struct DepEdge {
  InstanceId from = engine::kInvalidInstance;
  InstanceId to = engine::kInvalidInstance;
  DepKind kind = DepKind::kFlow;
  /// The object carrying a data dependence; kInvalidObject for control.
  wfspec::ObjectId object = wfspec::kInvalidObject;

  bool operator==(const DepEdge&) const = default;
};

/// Builds and incrementally maintains the dependence graph over the
/// EFFECTIVE execution of a system log (SystemLog::effective():
/// originals before any recovery, the repaired schedule afterwards).
/// Full construction is O(log size x accesses); incremental refresh is
/// O(new entries x accesses).
class DependencyAnalyzer {
 public:
  using EdgeIndex = std::uint32_t;

  /// An empty analyzer; call rebuild()/refresh() to attach it to a log.
  DependencyAnalyzer() = default;

  /// Builds the full graph over `log` (equivalent to rebuild()).
  DependencyAnalyzer(const engine::SystemLog& log,
                     const std::vector<const wfspec::WorkflowSpec*>& spec_of_run);

  /// Discards all state and rebuilds over the log's current effective
  /// view. Counted in the `deps.full_rebuilds` metric.
  void rebuild(const engine::SystemLog& log,
               const std::vector<const wfspec::WorkflowSpec*>& spec_of_run);

  /// Brings the graph up to date with `log`. New ORIGINAL entries are
  /// appended in O(their accesses) -- they always sort at the tail of
  /// the effective schedule, so the existing graph is a valid prefix.
  /// Recovery entries (undo/redo/fresh) are applied as an incremental
  /// SPLICE: the schedule suffix from the earliest touched slot is
  /// truncated (tag retractions included) and the repaired suffix is
  /// re-ingested, leaving the graph byte-identical to a scratch rebuild
  /// at O(suffix) cost -- bounded by the damage region's slot span, not
  /// the log. Returns true when an incremental path was taken; false
  /// only on (re)attachment to a new log or the checked fallback
  /// rebuild.
  bool refresh(const engine::SystemLog& log,
               const std::vector<const wfspec::WorkflowSpec*>& spec_of_run);

  [[nodiscard]] const std::vector<DepEdge>& edges() const noexcept { return edges_; }
  [[nodiscard]] const DepEdge& edge(EdgeIndex index) const { return edges_[index]; }

  /// Outgoing / incoming edges of an instance, copied (compat API; the
  /// span/visitor accessors below avoid the copies).
  [[nodiscard]] std::vector<DepEdge> edges_from(InstanceId i) const;
  [[nodiscard]] std::vector<DepEdge> edges_to(InstanceId i) const;

  /// Incoming edges of an instance as a zero-copy span: every edge added
  /// while ingesting instance i targets i, so in-edges are a contiguous
  /// range of edges() -- the in-adjacency is implicitly CSR.
  [[nodiscard]] std::span<const DepEdge> in_edges(InstanceId i) const;

  /// Outgoing edge indices of an instance as a zero-copy span into the
  /// sealed CSR array. Seals the overflow chain first if needed (cost
  /// O(V+E), amortised across appends); prefer for_each_out_edge() on
  /// hot incremental paths.
  [[nodiscard]] std::span<const EdgeIndex> out_edge_indices(InstanceId i) const;

  /// Visits the index of every outgoing edge of `i` without copying or
  /// sealing: the sealed CSR range first, then the not-yet-sealed chain
  /// suffix (newest first). The linked chains cover ALL edges (they are
  /// what makes suffix truncation O(dropped edges)); the walk stops at
  /// the sealed boundary to avoid double-visiting CSR-covered edges.
  template <typename Visitor>
  void for_each_out_edge(InstanceId i, Visitor visit) const {
    const auto node = static_cast<std::size_t>(i);
    if (node + 1 < out_start_.size()) {
      for (auto k = out_start_[node]; k < out_start_[node + 1]; ++k) {
        visit(out_csr_[k]);
      }
    }
    if (node < out_head_.size()) {
      for (std::int64_t e = out_head_[node];
           e >= 0 && static_cast<std::size_t>(e) >= sealed_edges_;
           e = out_next_[static_cast<std::size_t>(e)]) {
        visit(static_cast<EdgeIndex>(e));
      }
    }
  }

  [[nodiscard]] bool depends(InstanceId from, InstanceId to, DepKind kind) const;

  /// Forward closure over flow edges from `seeds` -- the paper's
  /// t_i ->_f^* t_j damage spreading (Theorem 1 condition 3). The result
  /// contains the seeds and is sorted by instance id (= commit order).
  [[nodiscard]] std::vector<InstanceId> flow_closure(
      const std::vector<InstanceId>& seeds) const;

  /// Forward closure over BOTH flow and control edges (used to bound the
  /// set of instances recovery may touch at all).
  [[nodiscard]] std::vector<InstanceId> flow_control_closure(
      const std::vector<InstanceId>& seeds) const;

  /// Instances control-dependent (transitively) on `branch`.
  [[nodiscard]] std::vector<InstanceId> controlled_by(InstanceId branch) const;

  /// One effective-schedule read of `object`, in slot order. The index
  /// lets Theorem 1 c4 find "who read object o after slot s" by binary
  /// search instead of rescanning the effective log (see readers_after).
  struct ReaderRecord {
    engine::SeqNo slot = 0;
    InstanceId reader = engine::kInvalidInstance;
  };

  /// All effective reads of `object`, sorted by (slot, reader).
  [[nodiscard]] std::span<const ReaderRecord> readers_of(
      wfspec::ObjectId object) const;

  /// Appends to `out` every instance that read `object` at a logical
  /// slot strictly after `slot`. O(log readers + matches).
  void readers_after(wfspec::ObjectId object, engine::SeqNo slot,
                     std::vector<InstanceId>& out) const;

  /// Number of log entries covered by the graph (== log size at the last
  /// rebuild/refresh; instance ids are < this).
  [[nodiscard]] std::size_t instance_count() const noexcept { return n_; }

  /// Log prefix consumed so far (equal to instance_count()).
  [[nodiscard]] std::size_t processed_entries() const noexcept { return processed_; }

  // --- Streaming taint layer (online damage tracking). ---

  /// True iff `i` is damage-tainted: flow-reachable (transitively) from
  /// a live malicious entry of the current effective schedule. Tags are
  /// propagated during ingest and retracted when recovery evicts the
  /// carrying entries.
  [[nodiscard]] bool tainted(InstanceId i) const noexcept {
    const auto node = static_cast<std::size_t>(i);
    return node < taint_.size() && (taint_[node] & kTainted) != 0;
  }

  /// Live malicious entries currently in the graph (the taint sources).
  [[nodiscard]] std::size_t taint_source_count() const noexcept {
    return taint_sources_;
  }

  /// The materialized damage frontier: every tainted instance, sorted by
  /// id. O(frontier log frontier) -- no graph walk.
  [[nodiscard]] std::vector<InstanceId> tainted_frontier() const;

  /// True iff `seeds` (sorted, deduplicated) is exactly the set of live
  /// malicious entries in the graph -- the condition under which the
  /// materialized taint set IS the flow closure of `seeds` and an alert
  /// can skip the closure walk entirely.
  [[nodiscard]] bool frontier_covers(const std::vector<InstanceId>& seeds) const;

 private:
  template <typename Filter>
  [[nodiscard]] std::vector<InstanceId> closure(const std::vector<InstanceId>& seeds,
                                                Filter keep) const;

  void add_edge(InstanceId from, InstanceId to, DepKind kind,
                wfspec::ObjectId object);
  /// Ingests one effective-schedule entry (reads, writes, control), in
  /// schedule order. All edges added here target entry.id. Propagates
  /// the streaming taint tag as a side effect.
  void ingest(const engine::TaskInstance& entry);
  /// Applies a batch containing recovery entries as a graph splice:
  /// truncate the schedule suffix from the earliest touched slot,
  /// retract its taint, re-ingest the repaired suffix. Returns false if
  /// a structural invariant check failed (caller falls back to rebuild).
  [[nodiscard]] bool splice_recovery(const engine::SystemLog& log);
  /// Folds all edges into the flat out-CSR arrays (chains are kept: they
  /// are the truncation structure).
  void seal();
  void reset_state();
  void ensure_object(wfspec::ObjectId object);
  [[nodiscard]] const wfspec::WorkflowSpec* spec_for(engine::RunId run) const;

  // Taint tag bits.
  static constexpr std::uint8_t kTainted = 1;  // flow-reachable from a source
  static constexpr std::uint8_t kSource = 2;   // live malicious entry

  // --- Graph: edges, in-CSR (implicit), out-CSR + linked chains. ---
  std::vector<DepEdge> edges_;
  /// In-edges of instance i are edges()[in_begin_[i] .. +in_count_[i]).
  std::vector<EdgeIndex> in_begin_;
  std::vector<EdgeIndex> in_count_;
  /// Sealed out-CSR over edges [0, sealed_edges_): concatenated edge
  /// indices per instance, offsets in out_start_ (size = sealed nodes+1).
  /// A cache for fast iteration; invalidated if truncation cuts below
  /// sealed_edges_ and lazily rebuilt.
  std::vector<EdgeIndex> out_start_;
  std::vector<EdgeIndex> out_csr_;
  std::size_t sealed_edges_ = 0;
  /// Per-source linked chains over ALL edges, newest first: out_head_
  /// [node] is the newest edge of node (-1 none), out_next_[edge] the
  /// next older edge of the same source. Never cleared -- truncating the
  /// edge array pops chain heads in O(dropped edges), which is what lets
  /// recovery splice the graph instead of rebuilding it.
  std::vector<std::int64_t> out_head_;
  std::vector<std::int64_t> out_next_;

  // --- Dense sweep state, keyed by interned ids. ---
  std::vector<InstanceId> last_writer_by_object_;
  std::vector<std::vector<InstanceId>> readers_since_write_;
  std::vector<std::vector<ReaderRecord>> readers_by_object_;
  /// All effective writes of each object, sorted by (slot, writer) --
  /// the mirror of readers_by_object_, needed to reconstruct
  /// last_writer/readers_since_write at a truncation point.
  std::vector<std::vector<ReaderRecord>> writers_by_object_;
  /// last_instance_by_run_[run][task]: latest incarnation seen.
  std::vector<std::vector<InstanceId>> last_instance_by_run_;
  /// Ingested instances of each run in schedule order (only entries with
  /// a spec, mirroring last_instance_by_run_ updates): popped on
  /// truncation so last_instance state can be rebuilt per affected run.
  std::vector<std::vector<InstanceId>> instances_by_run_;
  /// The ingested effective schedule, in (logical_slot, id) order. The
  /// graph's edge blocks follow exactly this order, so a slot boundary
  /// maps to an edge-array prefix.
  std::vector<InstanceId> schedule_;

  // --- Streaming taint state. ---
  std::vector<std::uint8_t> taint_;       // per instance: kTainted|kSource
  std::vector<InstanceId> tainted_ids_;   // unsorted materialized frontier
  std::size_t taint_sources_ = 0;

  // --- Sync bookkeeping. ---
  const engine::SystemLog* log_ = nullptr;
  std::vector<const wfspec::WorkflowSpec*> specs_;
  std::size_t processed_ = 0;
  std::size_t recovery_entries_seen_ = 0;
  std::size_t n_ = 0;  // instance arrays cover ids [0, n_)

  // --- Reusable closure scratch (epoch-stamped visited array). ---
  mutable std::vector<std::uint32_t> stamp_;
  mutable std::uint32_t epoch_ = 0;
  mutable std::vector<InstanceId> worklist_;
};

/// Graphviz rendering of the dependence graph over the effective
/// execution: nodes are task instances (malicious ones highlighted),
/// edges coloured by kind and labelled with the carrying object (named
/// through the catalog of the run that owns the edge's source).
[[nodiscard]] std::string to_dot(
    const DependencyAnalyzer& deps, const engine::SystemLog& log,
    const std::vector<const wfspec::WorkflowSpec*>& spec_of_run);

}  // namespace selfheal::deps
