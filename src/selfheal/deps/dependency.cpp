#include "selfheal/deps/dependency.hpp"

#include <algorithm>
#include <deque>
#include <map>
#include <set>
#include <sstream>

namespace selfheal::deps {

const char* to_string(DepKind kind) {
  switch (kind) {
    case DepKind::kFlow: return "flow";
    case DepKind::kAnti: return "anti";
    case DepKind::kOutput: return "output";
    case DepKind::kControl: return "control";
  }
  return "?";
}

DependencyAnalyzer::DependencyAnalyzer(
    const engine::SystemLog& log,
    const std::vector<const wfspec::WorkflowSpec*>& spec_of_run) {
  const std::size_t n = log.size();
  out_.resize(n);
  in_.resize(n);

  auto add_edge = [&](InstanceId from, InstanceId to, DepKind kind,
                      wfspec::ObjectId object) {
    if (from == to) return;
    edges_.push_back(DepEdge{from, to, kind, object});
    out_[static_cast<std::size_t>(from)].push_back(edges_.size() - 1);
    in_[static_cast<std::size_t>(to)].push_back(edges_.size() - 1);
  };

  // The analysis runs over the EFFECTIVE execution in logical-slot
  // order: before any recovery this is exactly the original log; after
  // a recovery round it is the repaired schedule, so later rounds see
  // dependences through redone/fresh entries too.
  const auto effective = log.effective();

  // --- Data dependences: one forward sweep per the commit order,
  // tracking per object the last writer and the readers since.
  struct ObjectState {
    InstanceId last_writer = engine::kInvalidInstance;
    std::vector<InstanceId> readers_since_write;
  };
  std::map<wfspec::ObjectId, ObjectState> state;

  for (const auto id : effective) {
    const auto& e = log.entry(id);
    // Read phase first (a task reads the pre-state, then writes).
    for (const auto object : e.read_objects) {
      auto& s = state[object];
      if (s.last_writer != engine::kInvalidInstance) {
        add_edge(s.last_writer, e.id, DepKind::kFlow, object);
      }
      s.readers_since_write.push_back(e.id);
    }
    for (const auto object : e.written_objects) {
      auto& s = state[object];
      for (const InstanceId reader : s.readers_since_write) {
        add_edge(reader, e.id, DepKind::kAnti, object);
      }
      if (s.last_writer != engine::kInvalidInstance) {
        add_edge(s.last_writer, e.id, DepKind::kOutput, object);
      }
      s.last_writer = e.id;
      s.readers_since_write.clear();
    }
  }

  // --- Control dependences: per run, from the latest preceding instance
  // of each dominant (branch) node of the task.
  // last_instance[(run, task)] tracks the most recent incarnation seen.
  std::map<std::pair<engine::RunId, wfspec::TaskId>, InstanceId> last_instance;
  for (const auto id : effective) {
    const auto& e = log.entry(id);
    const auto* spec = e.run >= 0 && static_cast<std::size_t>(e.run) < spec_of_run.size()
                           ? spec_of_run[static_cast<std::size_t>(e.run)]
                           : nullptr;
    if (spec != nullptr) {
      for (const auto dominant : spec->dominant_nodes(e.task)) {
        const auto it = last_instance.find({e.run, dominant});
        if (it != last_instance.end()) {
          add_edge(it->second, e.id, DepKind::kControl, wfspec::kInvalidObject);
        }
      }
    }
    last_instance[{e.run, e.task}] = e.id;
  }
}

std::vector<DepEdge> DependencyAnalyzer::edges_from(InstanceId i) const {
  std::vector<DepEdge> result;
  for (const auto idx : out_.at(static_cast<std::size_t>(i))) {
    result.push_back(edges_[idx]);
  }
  return result;
}

std::vector<DepEdge> DependencyAnalyzer::edges_to(InstanceId i) const {
  std::vector<DepEdge> result;
  for (const auto idx : in_.at(static_cast<std::size_t>(i))) {
    result.push_back(edges_[idx]);
  }
  return result;
}

bool DependencyAnalyzer::depends(InstanceId from, InstanceId to, DepKind kind) const {
  for (const auto idx : out_.at(static_cast<std::size_t>(from))) {
    const auto& e = edges_[idx];
    if (e.to == to && e.kind == kind) return true;
  }
  return false;
}

template <typename Filter>
std::vector<InstanceId> DependencyAnalyzer::closure(
    const std::vector<InstanceId>& seeds, Filter keep) const {
  std::set<InstanceId> seen(seeds.begin(), seeds.end());
  std::deque<InstanceId> queue(seeds.begin(), seeds.end());
  while (!queue.empty()) {
    const InstanceId i = queue.front();
    queue.pop_front();
    for (const auto idx : out_.at(static_cast<std::size_t>(i))) {
      const auto& e = edges_[idx];
      if (!keep(e)) continue;
      if (seen.insert(e.to).second) queue.push_back(e.to);
    }
  }
  return {seen.begin(), seen.end()};
}

std::vector<InstanceId> DependencyAnalyzer::flow_closure(
    const std::vector<InstanceId>& seeds) const {
  return closure(seeds, [](const DepEdge& e) { return e.kind == DepKind::kFlow; });
}

std::vector<InstanceId> DependencyAnalyzer::flow_control_closure(
    const std::vector<InstanceId>& seeds) const {
  return closure(seeds, [](const DepEdge& e) {
    return e.kind == DepKind::kFlow || e.kind == DepKind::kControl;
  });
}

std::string to_dot(const DependencyAnalyzer& deps, const engine::SystemLog& log,
                   const std::vector<const wfspec::WorkflowSpec*>& spec_of_run) {
  std::ostringstream out;
  out << "digraph dependences {\n  rankdir=LR;\n";
  for (const auto id : log.effective()) {
    const auto& e = log.entry(id);
    const auto* spec = spec_of_run.at(static_cast<std::size_t>(e.run));
    out << "  i" << id << " [label=\"" << spec->task(e.task).name;
    if (e.incarnation > 1) out << "^" << e.incarnation;
    out << "\\nrun" << e.run << "\"";
    if (e.kind == engine::ActionKind::kMalicious) {
      out << ", style=filled, fillcolor=\"#ffb3b3\"";
    }
    out << "];\n";
  }
  for (const auto& edge : deps.edges()) {
    const char* color = "black";
    switch (edge.kind) {
      case DepKind::kFlow: color = "blue"; break;
      case DepKind::kAnti: color = "orange"; break;
      case DepKind::kOutput: color = "purple"; break;
      case DepKind::kControl: color = "gray"; break;
    }
    out << "  i" << edge.from << " -> i" << edge.to << " [color=" << color;
    if (edge.object != wfspec::kInvalidObject && !spec_of_run.empty()) {
      out << ", label=\"" << spec_of_run.front()->catalog().name(edge.object) << "\"";
    } else if (edge.kind == DepKind::kControl) {
      out << ", style=dashed";
    }
    out << "];\n";
  }
  out << "}\n";
  return out.str();
}

std::vector<InstanceId> DependencyAnalyzer::controlled_by(InstanceId branch) const {
  std::vector<InstanceId> result;
  for (const auto idx : out_.at(static_cast<std::size_t>(branch))) {
    const auto& e = edges_[idx];
    if (e.kind == DepKind::kControl) result.push_back(e.to);
  }
  std::sort(result.begin(), result.end());
  return result;
}

}  // namespace selfheal::deps
