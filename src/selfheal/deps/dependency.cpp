#include "selfheal/deps/dependency.hpp"

#include <algorithm>
#include <limits>
#include <sstream>
#include <utility>

#include "selfheal/obs/metrics.hpp"

namespace selfheal::deps {

namespace {

struct DepsMetrics {
  obs::Counter& incremental_appends = obs::metrics().counter("deps.incremental_appends");
  obs::Counter& recovery_splices = obs::metrics().counter("deps.recovery_splices");
  obs::Counter& full_rebuilds = obs::metrics().counter("deps.full_rebuilds");
  obs::Counter& stream_tags_propagated =
      obs::metrics().counter("deps.stream_tags_propagated");
  obs::Counter& stream_retractions = obs::metrics().counter("deps.stream_retractions");
  obs::StatMetric& closure_visited = obs::metrics().stats("analyzer.closure_visited");
};

DepsMetrics& deps_metrics() {
  static DepsMetrics m;
  return m;
}

/// Seal when the unsealed overflow outgrows a quarter of the sealed
/// prefix: appends stay O(1) amortised and iteration stays mostly flat.
constexpr std::size_t kSealSlack = 256;

}  // namespace

const char* to_string(DepKind kind) {
  switch (kind) {
    case DepKind::kFlow: return "flow";
    case DepKind::kAnti: return "anti";
    case DepKind::kOutput: return "output";
    case DepKind::kControl: return "control";
  }
  return "?";
}

DependencyAnalyzer::DependencyAnalyzer(
    const engine::SystemLog& log,
    const std::vector<const wfspec::WorkflowSpec*>& spec_of_run) {
  rebuild(log, spec_of_run);
}

void DependencyAnalyzer::reset_state() {
  edges_.clear();
  in_begin_.clear();
  in_count_.clear();
  out_start_.clear();
  out_csr_.clear();
  sealed_edges_ = 0;
  out_head_.clear();
  out_next_.clear();
  last_writer_by_object_.clear();
  readers_since_write_.clear();
  readers_by_object_.clear();
  writers_by_object_.clear();
  last_instance_by_run_.clear();
  instances_by_run_.clear();
  schedule_.clear();
  taint_.clear();
  tainted_ids_.clear();
  taint_sources_ = 0;
  processed_ = 0;
  recovery_entries_seen_ = 0;
  n_ = 0;
}

void DependencyAnalyzer::rebuild(
    const engine::SystemLog& log,
    const std::vector<const wfspec::WorkflowSpec*>& spec_of_run) {
  reset_state();
  log_ = &log;
  specs_ = spec_of_run;
  n_ = log.size();
  in_begin_.assign(n_, 0);
  in_count_.assign(n_, 0);
  out_head_.assign(n_, -1);
  taint_.assign(n_, 0);

  // The analysis runs over the EFFECTIVE execution in logical-slot
  // order: before any recovery this is exactly the original log; after
  // a recovery round it is the repaired schedule, so later rounds see
  // dependences through redone/fresh entries too.
  for (const auto id : log.effective()) ingest(log.entry(id));

  processed_ = log.size();
  recovery_entries_seen_ = log.recovery_entry_count();
  seal();
  deps_metrics().full_rebuilds.inc();
}

bool DependencyAnalyzer::refresh(
    const engine::SystemLog& log,
    const std::vector<const wfspec::WorkflowSpec*>& spec_of_run) {
  // The incremental paths are sound only while the existing graph is a
  // prefix of the current effective schedule; (re)attaching to a new log
  // is the one case that inherently needs a scratch build.
  const bool same_log = log_ == &log && processed_ <= log.size();
  if (!same_log) {
    rebuild(log, spec_of_run);
    return false;
  }

  specs_ = spec_of_run;
  if (processed_ == log.size()) return true;  // nothing new

  if (log.recovery_entry_count() != recovery_entries_seen_) {
    // A recovery round rewrote part of the schedule (undos evict,
    // redos/freshes re-slot). Every dependence edge points from a lower
    // logical slot to a higher one, so the rewrite is confined to the
    // schedule suffix from the earliest touched slot: splice it.
    if (splice_recovery(log)) {
      deps_metrics().recovery_splices.inc();
      return true;
    }
    // Checked fallback: a structural invariant did not hold. Counted in
    // deps.full_rebuilds so benches prove this does not fire steady-state.
    rebuild(log, spec_of_run);
    return false;
  }

  // New ORIGINAL entries append: their fresh logical slots sort after
  // every existing entry and they never evict one.
  n_ = log.size();
  in_begin_.resize(n_, 0);
  in_count_.resize(n_, 0);
  out_head_.resize(n_, -1);
  taint_.resize(n_, 0);
  for (std::size_t i = processed_; i < n_; ++i) {
    ingest(log.entry(static_cast<InstanceId>(i)));
  }
  processed_ = n_;
  if (edges_.size() - sealed_edges_ > kSealSlack + sealed_edges_ / 4) seal();
  deps_metrics().incremental_appends.inc();
  return true;
}

bool DependencyAnalyzer::splice_recovery(const engine::SystemLog& log) {
  // 1. The earliest logical slot the new batch touches. Undo entries
  //    carry their victim's slot, redos their target's, freshes the slot
  //    the scheduler assigned, originals a fresh tail slot; repairs are
  //    not part of the effective schedule.
  engine::SeqNo s_min = std::numeric_limits<engine::SeqNo>::max();
  for (std::size_t i = processed_; i < log.size(); ++i) {
    const auto& e = log.entry(static_cast<InstanceId>(i));
    if (e.kind == engine::ActionKind::kRepair) continue;
    if (e.logical_slot <= 0) return false;  // unstamped recovery entry
    s_min = std::min(s_min, e.logical_slot);
  }

  // 2. Cut point: the first ingested schedule position at slot >= s_min.
  //    Edge blocks are contiguous in schedule order, so the cut maps to
  //    an edge-array prefix.
  const auto cut = std::lower_bound(
      schedule_.begin(), schedule_.end(), s_min,
      [&](InstanceId id, engine::SeqNo slot) {
        return log.entry(id).logical_slot < slot;
      });
  const auto k = static_cast<std::size_t>(cut - schedule_.begin());
  const std::vector<InstanceId> dropped(cut, schedule_.end());
  const std::size_t e0 =
      k < schedule_.size()
          ? static_cast<std::size_t>(in_begin_[static_cast<std::size_t>(schedule_[k])])
          : edges_.size();

  // 3. Retract the suffix, newest first: pop chain heads, sweep-state
  //    records and taint tags in exact reverse-ingest order. Collect the
  //    objects / (run, task) pairs whose state needs reconstruction.
  auto& dm = deps_metrics();
  std::vector<wfspec::ObjectId> dirty_objects;
  std::vector<std::pair<std::size_t, wfspec::TaskId>> dirty_tasks;
  for (std::size_t j = schedule_.size(); j-- > k;) {
    const auto id = schedule_[j];
    const auto node = static_cast<std::size_t>(id);
    const auto& e = log.entry(id);
    if (spec_for(e.run) != nullptr) {
      const auto r = static_cast<std::size_t>(e.run);
      if (r >= instances_by_run_.size() || instances_by_run_[r].empty() ||
          instances_by_run_[r].back() != id) {
        return false;
      }
      instances_by_run_[r].pop_back();
      dirty_tasks.emplace_back(r, e.task);
    }
    for (std::size_t w = e.written_objects.size(); w-- > 0;) {
      const auto o = static_cast<std::size_t>(e.written_objects[w]);
      if (o >= writers_by_object_.size() || writers_by_object_[o].empty() ||
          writers_by_object_[o].back().reader != id) {
        return false;
      }
      writers_by_object_[o].pop_back();
      dirty_objects.push_back(e.written_objects[w]);
    }
    for (std::size_t r = e.read_objects.size(); r-- > 0;) {
      const auto o = static_cast<std::size_t>(e.read_objects[r]);
      if (o >= readers_by_object_.size() || readers_by_object_[o].empty() ||
          readers_by_object_[o].back().reader != id) {
        return false;
      }
      readers_by_object_[o].pop_back();
      dirty_objects.push_back(e.read_objects[r]);
    }
    if ((taint_[node] & kTainted) != 0) {
      if ((taint_[node] & kSource) != 0) --taint_sources_;
      taint_[node] = 0;
      dm.stream_retractions.inc();
    }
    // Entries evicted by this round must read as edgeless afterwards,
    // exactly as they would after a scratch rebuild; live ones get their
    // block back on re-ingest.
    in_begin_[node] = 0;
    in_count_[node] = 0;
  }
  std::erase_if(tainted_ids_, [&](InstanceId id) {
    return (taint_[static_cast<std::size_t>(id)] & kTainted) == 0;
  });

  // Pop dropped edges off their source chains (strict LIFO per source).
  for (std::size_t idx = edges_.size(); idx-- > e0;) {
    const auto src = static_cast<std::size_t>(edges_[idx].from);
    if (out_head_[src] != static_cast<std::int64_t>(idx)) return false;
    out_head_[src] = out_next_[idx];
  }
  edges_.resize(e0);
  out_next_.resize(e0);
  if (e0 < sealed_edges_) {
    // The CSR cache references dropped edges; invalidate it wholesale
    // (the chains cover everything until the next lazy seal).
    sealed_edges_ = 0;
    out_start_.clear();
    out_csr_.clear();
  }
  schedule_.resize(k);

  // 4. Reconstruct the sweep state at the cut point for what was touched.
  std::sort(dirty_objects.begin(), dirty_objects.end());
  dirty_objects.erase(std::unique(dirty_objects.begin(), dirty_objects.end()),
                      dirty_objects.end());
  for (const auto object : dirty_objects) {
    const auto o = static_cast<std::size_t>(object);
    const auto& writes = writers_by_object_[o];
    const auto& reads = readers_by_object_[o];
    auto& pending = readers_since_write_[o];
    pending.clear();
    if (writes.empty()) {
      last_writer_by_object_[o] = engine::kInvalidInstance;
      for (const auto& rec : reads) pending.push_back(rec.reader);
    } else {
      const auto& w = writes.back();
      last_writer_by_object_[o] = w.reader;
      // Readers strictly after the last write in schedule order; both
      // record vectors are sorted by (slot, id), and an instance's read
      // of an object it also writes precedes its own write.
      auto it = std::upper_bound(
          reads.begin(), reads.end(), w,
          [](const ReaderRecord& a, const ReaderRecord& b) {
            if (a.slot != b.slot) return a.slot < b.slot;
            return a.reader < b.reader;
          });
      for (; it != reads.end(); ++it) pending.push_back(it->reader);
    }
  }
  std::sort(dirty_tasks.begin(), dirty_tasks.end());
  dirty_tasks.erase(std::unique(dirty_tasks.begin(), dirty_tasks.end()),
                    dirty_tasks.end());
  for (const auto& [r, task] : dirty_tasks) {
    auto& last_instance = last_instance_by_run_[r];
    auto latest = engine::kInvalidInstance;
    const auto& history = instances_by_run_[r];
    for (std::size_t j = history.size(); j-- > 0;) {
      if (log.entry(history[j]).task == task) {
        latest = history[j];
        break;
      }
    }
    last_instance[static_cast<std::size_t>(task)] = latest;
  }

  // 5. Re-ingest the repaired suffix: dropped entries that are still
  //    live in the effective view, plus the new batch's live entries, in
  //    (logical_slot, id) order -- exactly what a scratch rebuild would
  //    ingest from this slot on, so the edge array comes out
  //    byte-identical to a rebuild.
  std::vector<InstanceId> suffix;
  suffix.reserve(dropped.size() + (log.size() - processed_));
  for (const auto id : dropped) {
    if (log.is_live_execution(id)) suffix.push_back(id);
  }
  for (std::size_t i = processed_; i < log.size(); ++i) {
    const auto id = static_cast<InstanceId>(i);
    if (log.is_live_execution(id)) suffix.push_back(id);
  }
  std::sort(suffix.begin(), suffix.end(), [&](InstanceId a, InstanceId b) {
    const auto sa = log.entry(a).logical_slot;
    const auto sb = log.entry(b).logical_slot;
    if (sa != sb) return sa < sb;
    return a < b;
  });

  n_ = log.size();
  in_begin_.resize(n_, 0);
  in_count_.resize(n_, 0);
  out_head_.resize(n_, -1);
  taint_.resize(n_, 0);
  for (const auto id : suffix) ingest(log.entry(id));

  processed_ = log.size();
  recovery_entries_seen_ = log.recovery_entry_count();
  if (edges_.size() - sealed_edges_ > kSealSlack + sealed_edges_ / 4) seal();
  return true;
}

const wfspec::WorkflowSpec* DependencyAnalyzer::spec_for(engine::RunId run) const {
  return run >= 0 && static_cast<std::size_t>(run) < specs_.size()
             ? specs_[static_cast<std::size_t>(run)]
             : nullptr;
}

void DependencyAnalyzer::ensure_object(wfspec::ObjectId object) {
  const auto o = static_cast<std::size_t>(object);
  if (o >= last_writer_by_object_.size()) {
    last_writer_by_object_.resize(o + 1, engine::kInvalidInstance);
    readers_since_write_.resize(o + 1);
    readers_by_object_.resize(o + 1);
    writers_by_object_.resize(o + 1);
  }
}

void DependencyAnalyzer::add_edge(InstanceId from, InstanceId to, DepKind kind,
                                  wfspec::ObjectId object) {
  if (from == to) return;
  const auto index = static_cast<EdgeIndex>(edges_.size());
  edges_.push_back(DepEdge{from, to, kind, object});
  out_next_.push_back(out_head_[static_cast<std::size_t>(from)]);
  out_head_[static_cast<std::size_t>(from)] = static_cast<std::int64_t>(index);
  ++in_count_[static_cast<std::size_t>(to)];
}

void DependencyAnalyzer::ingest(const engine::TaskInstance& e) {
  // All edges added below target e.id, so this entry's in-edges form the
  // next contiguous range of edges_ (the implicit in-CSR).
  in_begin_[static_cast<std::size_t>(e.id)] = static_cast<EdgeIndex>(edges_.size());
  schedule_.push_back(e.id);

  // Read phase first (a task reads the pre-state, then writes).
  for (const auto object : e.read_objects) {
    ensure_object(object);
    const auto o = static_cast<std::size_t>(object);
    if (last_writer_by_object_[o] != engine::kInvalidInstance) {
      add_edge(last_writer_by_object_[o], e.id, DepKind::kFlow, object);
    }
    readers_since_write_[o].push_back(e.id);
    readers_by_object_[o].push_back(ReaderRecord{e.logical_slot, e.id});
  }
  for (const auto object : e.written_objects) {
    ensure_object(object);
    const auto o = static_cast<std::size_t>(object);
    for (const InstanceId reader : readers_since_write_[o]) {
      add_edge(reader, e.id, DepKind::kAnti, object);
    }
    if (last_writer_by_object_[o] != engine::kInvalidInstance) {
      add_edge(last_writer_by_object_[o], e.id, DepKind::kOutput, object);
    }
    last_writer_by_object_[o] = e.id;
    readers_since_write_[o].clear();
    writers_by_object_[o].push_back(ReaderRecord{e.logical_slot, e.id});
  }

  // Control dependences: from the latest preceding instance of each
  // dominant (branch) node of the task, within the same run.
  if (const auto* spec = spec_for(e.run)) {
    const auto r = static_cast<std::size_t>(e.run);
    if (r >= last_instance_by_run_.size()) {
      last_instance_by_run_.resize(r + 1);
      instances_by_run_.resize(r + 1);
    }
    auto& last_instance = last_instance_by_run_[r];
    if (last_instance.size() < spec->task_count()) {
      last_instance.resize(spec->task_count(), engine::kInvalidInstance);
    }
    for (const auto dominant : spec->dominant_nodes(e.task)) {
      const auto prior = last_instance[static_cast<std::size_t>(dominant)];
      if (prior != engine::kInvalidInstance) {
        add_edge(prior, e.id, DepKind::kControl, wfspec::kInvalidObject);
      }
    }
    last_instance[static_cast<std::size_t>(e.task)] = e.id;
    instances_by_run_[r].push_back(e.id);
  }

  const auto count = static_cast<EdgeIndex>(edges_.size()) -
                     in_begin_[static_cast<std::size_t>(e.id)];
  in_count_[static_cast<std::size_t>(e.id)] = count;

  // Online taint (SLEUTH-style): an instance is damage-tainted iff it is
  // a live malicious entry or reads from a tainted last-writer. Because
  // every flow edge points from a lower logical slot to a higher one,
  // ingest order IS topological order, so this single O(in-edges) pass
  // maintains the exact flow closure of the live malicious set.
  const auto node = static_cast<std::size_t>(e.id);
  std::uint8_t tag = 0;
  if (e.kind == engine::ActionKind::kMalicious) {
    tag = kTainted | kSource;
  } else {
    const DepEdge* block = edges_.data() + in_begin_[node];
    for (EdgeIndex i = 0; i < count; ++i) {
      const auto& edge = block[i];
      if (edge.kind == DepKind::kFlow && tainted(edge.from)) {
        tag = kTainted;
        break;
      }
    }
  }
  if (tag != 0) {
    taint_[node] = tag;
    tainted_ids_.push_back(e.id);
    if ((tag & kSource) != 0) ++taint_sources_;
    deps_metrics().stream_tags_propagated.inc();
  }
}

void DependencyAnalyzer::seal() {
  // Counting sort of ALL edge indices by source instance -> flat CSR.
  out_start_.assign(n_ + 1, 0);
  for (const auto& e : edges_) {
    ++out_start_[static_cast<std::size_t>(e.from) + 1];
  }
  for (std::size_t i = 1; i <= n_; ++i) out_start_[i] += out_start_[i - 1];
  out_csr_.resize(edges_.size());
  std::vector<EdgeIndex> cursor(out_start_.begin(), out_start_.end() - 1);
  for (EdgeIndex idx = 0; idx < edges_.size(); ++idx) {
    out_csr_[cursor[static_cast<std::size_t>(edges_[idx].from)]++] = idx;
  }
  sealed_edges_ = edges_.size();
  // The chains are NOT cleared: they index every edge and are what makes
  // recovery splices O(dropped edges). The CSR is purely an iteration
  // cache over the sealed prefix.
}

std::vector<DepEdge> DependencyAnalyzer::edges_from(InstanceId i) const {
  if (i < 0 || static_cast<std::size_t>(i) >= n_) {
    throw std::out_of_range("DependencyAnalyzer::edges_from: invalid instance");
  }
  // Insertion order: the sealed CSR range is already oldest-first; the
  // overflow chain is newest-first, so that part is reversed.
  std::vector<DepEdge> result;
  const auto node = static_cast<std::size_t>(i);
  if (node + 1 < out_start_.size()) {
    for (auto k = out_start_[node]; k < out_start_[node + 1]; ++k) {
      result.push_back(edges_[out_csr_[k]]);
    }
  }
  const auto sealed_count = result.size();
  for (std::int64_t e = out_head_[node];
       e >= 0 && static_cast<std::size_t>(e) >= sealed_edges_;
       e = out_next_[static_cast<std::size_t>(e)]) {
    result.push_back(edges_[static_cast<std::size_t>(e)]);
  }
  std::reverse(result.begin() + static_cast<std::ptrdiff_t>(sealed_count),
               result.end());
  return result;
}

std::vector<DepEdge> DependencyAnalyzer::edges_to(InstanceId i) const {
  const auto span = in_edges(i);
  return {span.begin(), span.end()};
}

std::span<const DepEdge> DependencyAnalyzer::in_edges(InstanceId i) const {
  if (i < 0 || static_cast<std::size_t>(i) >= n_) {
    throw std::out_of_range("DependencyAnalyzer::in_edges: invalid instance");
  }
  const auto node = static_cast<std::size_t>(i);
  return {edges_.data() + in_begin_[node], in_count_[node]};
}

std::span<const DependencyAnalyzer::EdgeIndex> DependencyAnalyzer::out_edge_indices(
    InstanceId i) const {
  if (i < 0 || static_cast<std::size_t>(i) >= n_) {
    throw std::out_of_range("DependencyAnalyzer::out_edge_indices: invalid instance");
  }
  if (sealed_edges_ != edges_.size() || out_start_.size() != n_ + 1) {
    // Lazily fold the overflow into the CSR; scratch-only mutation.
    const_cast<DependencyAnalyzer*>(this)->seal();
  }
  const auto node = static_cast<std::size_t>(i);
  return {out_csr_.data() + out_start_[node],
          out_start_[node + 1] - out_start_[node]};
}

bool DependencyAnalyzer::depends(InstanceId from, InstanceId to, DepKind kind) const {
  // The target's in-edges are a contiguous span; scan the smaller side.
  for (const auto& e : in_edges(to)) {
    if (e.from == from && e.kind == kind) return true;
  }
  return false;
}

template <typename Filter>
std::vector<InstanceId> DependencyAnalyzer::closure(
    const std::vector<InstanceId>& seeds, Filter keep) const {
  if (stamp_.size() < n_) stamp_.resize(n_, 0);
  if (++epoch_ == 0) {  // stamp wrap-around: invalidate all stamps once
    std::fill(stamp_.begin(), stamp_.end(), 0);
    epoch_ = 1;
  }
  auto& work = worklist_;
  work.clear();
  for (const auto id : seeds) {
    const auto i = static_cast<std::size_t>(id);
    if (i >= n_ || stamp_[i] == epoch_) continue;
    stamp_[i] = epoch_;
    work.push_back(id);
  }
  for (std::size_t head = 0; head < work.size(); ++head) {
    for_each_out_edge(work[head], [&](EdgeIndex idx) {
      const auto& e = edges_[idx];
      if (!keep(e)) return;
      const auto t = static_cast<std::size_t>(e.to);
      if (stamp_[t] != epoch_) {
        stamp_[t] = epoch_;
        work.push_back(e.to);
      }
    });
  }
  deps_metrics().closure_visited.observe(static_cast<double>(work.size()));
  std::vector<InstanceId> result(work.begin(), work.end());
  std::sort(result.begin(), result.end());
  return result;
}

std::vector<InstanceId> DependencyAnalyzer::flow_closure(
    const std::vector<InstanceId>& seeds) const {
  return closure(seeds, [](const DepEdge& e) { return e.kind == DepKind::kFlow; });
}

std::vector<InstanceId> DependencyAnalyzer::flow_control_closure(
    const std::vector<InstanceId>& seeds) const {
  return closure(seeds, [](const DepEdge& e) {
    return e.kind == DepKind::kFlow || e.kind == DepKind::kControl;
  });
}

std::vector<InstanceId> DependencyAnalyzer::controlled_by(InstanceId branch) const {
  std::vector<InstanceId> result;
  for_each_out_edge(branch, [&](EdgeIndex idx) {
    const auto& e = edges_[idx];
    if (e.kind == DepKind::kControl) result.push_back(e.to);
  });
  std::sort(result.begin(), result.end());
  return result;
}

std::span<const DependencyAnalyzer::ReaderRecord> DependencyAnalyzer::readers_of(
    wfspec::ObjectId object) const {
  const auto o = static_cast<std::size_t>(object);
  if (object < 0 || o >= readers_by_object_.size()) return {};
  return readers_by_object_[o];
}

void DependencyAnalyzer::readers_after(wfspec::ObjectId object, engine::SeqNo slot,
                                       std::vector<InstanceId>& out) const {
  const auto readers = readers_of(object);
  // Records are appended in effective-schedule order, so they are sorted
  // by slot; find the first record strictly after `slot`.
  auto it = std::upper_bound(
      readers.begin(), readers.end(), slot,
      [](engine::SeqNo s, const ReaderRecord& r) { return s < r.slot; });
  for (; it != readers.end(); ++it) out.push_back(it->reader);
}

std::vector<InstanceId> DependencyAnalyzer::tainted_frontier() const {
  std::vector<InstanceId> result(tainted_ids_.begin(), tainted_ids_.end());
  std::sort(result.begin(), result.end());
  return result;
}

bool DependencyAnalyzer::frontier_covers(const std::vector<InstanceId>& seeds) const {
  // seeds must be sorted + deduplicated (the analyzer's moot-filtered
  // malicious set is). They cover the frontier iff they are EXACTLY the
  // live malicious set: each seed a source, and no source missing.
  if (seeds.size() != taint_sources_) return false;
  for (const auto id : seeds) {
    const auto node = static_cast<std::size_t>(id);
    if (node >= taint_.size() || (taint_[node] & kSource) == 0) return false;
  }
  return true;
}

std::string to_dot(const DependencyAnalyzer& deps, const engine::SystemLog& log,
                   const std::vector<const wfspec::WorkflowSpec*>& spec_of_run) {
  std::ostringstream out;
  out << "digraph dependences {\n  rankdir=LR;\n";
  for (const auto id : log.effective()) {
    const auto& e = log.entry(id);
    const auto* spec = spec_of_run.at(static_cast<std::size_t>(e.run));
    out << "  i" << id << " [label=\"" << spec->task(e.task).name;
    if (e.incarnation > 1) out << "^" << e.incarnation;
    out << "\\nrun" << e.run << "\"";
    if (e.kind == engine::ActionKind::kMalicious) {
      out << ", style=filled, fillcolor=\"#ffb3b3\"";
    }
    out << "];\n";
  }
  for (const auto& edge : deps.edges()) {
    const char* color = "black";
    switch (edge.kind) {
      case DepKind::kFlow: color = "blue"; break;
      case DepKind::kAnti: color = "orange"; break;
      case DepKind::kOutput: color = "purple"; break;
      case DepKind::kControl: color = "gray"; break;
    }
    out << "  i" << edge.from << " -> i" << edge.to << " [color=" << color;
    if (edge.object != wfspec::kInvalidObject) {
      // Name the carrying object through the catalog of the run that
      // OWNS the edge's source: runs may use distinct catalogs, and the
      // same interned id can name different objects in each.
      const auto run = log.entry(edge.from).run;
      const auto* spec = run >= 0 && static_cast<std::size_t>(run) < spec_of_run.size()
                             ? spec_of_run[static_cast<std::size_t>(run)]
                             : nullptr;
      if (spec != nullptr) {
        out << ", label=\"" << spec->catalog().name(edge.object) << "\"";
      }
    } else if (edge.kind == DepKind::kControl) {
      out << ", style=dashed";
    }
    out << "];\n";
  }
  out << "}\n";
  return out.str();
}

}  // namespace selfheal::deps
