// Record-framed, checksummed write-ahead log.
//
// Layout (all integers little-endian):
//
//   header (16 bytes)
//     0..7    magic "SHWALv1\0"
//     8..11   u32 format version (kWalVersion)
//     12..15  u32 CRC32C of bytes 0..11
//   record frame (9 + n bytes, repeated)
//     u32 payload length n
//     u32 CRC32C over [type byte || payload]
//     u8  record type (data / meta / seal)
//     n   payload bytes (arbitrary binary, newlines and NULs included)
//
// A seal record (empty payload) marks a clean close; nothing may follow
// it. The recovery scan walks frames sequentially and classifies any
// damage it finds:
//
//   * torn tail -- the FINAL frame is incomplete or fails its CRC with
//     no bytes beyond its declared extent: the classic crash-mid-append.
//     The scan truncates it cleanly; every prior record is intact and
//     the log is usable (WalError::recoverable()).
//   * mid-log corruption -- a frame fails its CRC (or declares an
//     implausible length) with MORE bytes after it: a flipped bit or
//     lost sector inside the log body. Records before the damage are
//     returned; everything after it is unreachable (frames are
//     sequential) and must be repaired from snapshot + replay.
//   * bad header -- magic/version/header-CRC damage: nothing in the file
//     can be trusted.
//
// Append and scan are pure byte-string operations so the chaos harness
// can hold the "disk" in memory and corrupt it surgically; WalFile wraps
// the same framing around an fsync-able file for real deployments.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace selfheal::storage {

inline constexpr std::uint32_t kWalVersion = 1;
inline constexpr std::size_t kWalHeaderSize = 16;
inline constexpr std::size_t kWalFrameOverhead = 9;  // len + crc + type
/// Records beyond this length are implausible (the framing would happily
/// carry them, but a corrupted length field must not make the scan chase
/// gigabytes of garbage).
inline constexpr std::size_t kWalMaxRecordLen = 16u << 20;

enum class WalRecordType : std::uint8_t {
  kData = 1,  // caller payload
  kMeta = 2,  // log-level metadata (e.g. snapshot base of a session WAL)
  kSeal = 3,  // clean close; empty payload; nothing may follow
};

enum class WalErrorKind {
  kNone,
  kTruncatedHeader,   // shorter than a header
  kBadMagic,          // header magic mismatch
  kBadVersion,        // unknown format version
  kBadHeaderCrc,      // header checksum mismatch
  kTornTail,          // incomplete/corrupt final frame (recoverable)
  kMidLogCorruption,  // corrupt frame with live bytes beyond it
  kImplausibleLength, // length field beyond kWalMaxRecordLen
  kTrailingData,      // bytes after a seal record
  kUnknownRecordType, // frame CRC valid but type byte unrecognised
};

[[nodiscard]] const char* to_string(WalErrorKind kind);

/// Structured scan damage report: what went wrong, where.
struct WalError {
  WalErrorKind kind = WalErrorKind::kNone;
  std::size_t offset = 0;        // byte offset of the damaged frame/field
  std::size_t record_index = 0;  // records successfully scanned before it

  [[nodiscard]] bool ok() const noexcept { return kind == WalErrorKind::kNone; }
  /// True iff the log prefix is fully intact and usable after truncating
  /// at `offset` (torn tail only).
  [[nodiscard]] bool recoverable() const noexcept {
    return kind == WalErrorKind::kTornTail;
  }
  [[nodiscard]] std::string message() const;
};

struct WalRecord {
  WalRecordType type = WalRecordType::kData;
  std::string payload;
  std::size_t offset = 0;  // byte offset of the record's frame
};

struct WalScan {
  std::vector<WalRecord> records;  // intact records, in append order
  bool sealed = false;
  WalError error;
  /// Length of the clean prefix (header + intact frames). A torn tail is
  /// repaired by truncating the log to this many bytes.
  std::size_t valid_bytes = 0;
};

/// A fresh, empty WAL: just the checksummed header.
[[nodiscard]] std::string wal_header();

/// One encoded record frame (for appends and for tests that need to
/// build corrupt logs byte by byte).
[[nodiscard]] std::string encode_wal_record(WalRecordType type,
                                            std::string_view payload);

/// Appends a record frame to the in-memory log.
void wal_append(std::string& wal, WalRecordType type, std::string_view payload);

/// Appends the seal record marking a clean close.
void wal_seal(std::string& wal);

/// Walks the log and returns every intact record plus a structured
/// verdict on any damage. Never throws: corrupt input is data, not an
/// exception.
[[nodiscard]] WalScan scan_wal(std::string_view wal);

/// File-backed append-only WAL with the same framing. Appends are
/// buffered by the OS; sync() makes everything appended so far durable.
class WalFile {
 public:
  /// Creates (truncates) `path` and writes the header.
  explicit WalFile(std::string path);
  ~WalFile();
  WalFile(const WalFile&) = delete;
  WalFile& operator=(const WalFile&) = delete;

  void append(WalRecordType type, std::string_view payload);
  void sync();
  /// Appends the seal record and fsyncs.
  void seal();
  void close();

  [[nodiscard]] const std::string& path() const noexcept { return path_; }

 private:
  std::string path_;
  int fd_ = -1;
};

/// Reads and scans a file-backed WAL. Missing file throws
/// std::runtime_error; corrupt content is reported via WalScan::error.
[[nodiscard]] WalScan scan_wal_file(const std::string& path);

}  // namespace selfheal::storage
