#include "selfheal/storage/fault_injector.hpp"

#include <algorithm>

#include "selfheal/obs/metrics.hpp"
#include "selfheal/util/fault_schedule.hpp"
#include "selfheal/util/rng.hpp"

namespace selfheal::storage {

namespace {

// Salts separating the fault draw from the position draws.
constexpr std::uint64_t kDecideSalt = 0x5704a6e0fa017ULL;
constexpr std::uint64_t kTearSalt = 0x7ea70c4a71ULL;
constexpr std::uint64_t kFlipSalt = 0xf11b17f11bULL;
constexpr std::uint64_t kChopSalt = 0xc40bc40bc4ULL;

struct FaultMetrics {
  obs::Counter& injected = obs::metrics().counter("storage.faults.injected");
};

FaultMetrics& fault_metrics() {
  static FaultMetrics m;
  return m;
}

}  // namespace

const char* to_string(StorageFaultKind kind) {
  switch (kind) {
    case StorageFaultKind::kNone: return "none";
    case StorageFaultKind::kTornWrite: return "torn_write";
    case StorageFaultKind::kBitFlip: return "bit_flip";
    case StorageFaultKind::kTruncation: return "truncation";
    case StorageFaultKind::kDuplicateRecord: return "duplicate_record";
    case StorageFaultKind::kCrashBeforeRename: return "crash_before_rename";
  }
  return "?";
}

StorageFaultKind StorageFaultInjector::decide(std::uint64_t op,
                                              bool snapshot) const {
  if (!config_.enabled()) return StorageFaultKind::kNone;
  util::ScheduleDraw draw(util::schedule_uniform(
      seed_ ^ kDecideSalt, util::mix64(op, snapshot ? 1 : 2)));
  if (draw.fires(config_.torn_write_rate)) return StorageFaultKind::kTornWrite;
  if (draw.fires(config_.bit_flip_rate)) return StorageFaultKind::kBitFlip;
  if (draw.fires(config_.truncation_rate)) return StorageFaultKind::kTruncation;
  if (!snapshot && draw.fires(config_.duplicate_record_rate)) {
    return StorageFaultKind::kDuplicateRecord;
  }
  if (snapshot && draw.fires(config_.crash_before_rename_rate)) {
    return StorageFaultKind::kCrashBeforeRename;
  }
  return StorageFaultKind::kNone;
}

std::size_t StorageFaultInjector::position(std::uint64_t op, std::uint64_t salt,
                                           std::size_t n) const {
  return static_cast<std::size_t>(util::schedule_index(seed_ ^ salt, op, n));
}

StorageFaultKind StorageFaultInjector::on_wal_append(std::string& medium,
                                                     std::string_view record,
                                                     std::uint64_t op) {
  const auto kind = decide(op, /*snapshot=*/false);
  switch (kind) {
    case StorageFaultKind::kNone:
    case StorageFaultKind::kCrashBeforeRename:  // snapshot-only; not drawn here
      medium.append(record);
      return StorageFaultKind::kNone;
    case StorageFaultKind::kTornWrite: {
      // Persist a strict prefix: at least the frame is provably torn.
      const std::size_t k = position(op, kTearSalt, record.size());
      medium.append(record.substr(0, k));
      ++counts_.torn_writes;
      break;
    }
    case StorageFaultKind::kBitFlip: {
      const std::size_t base = medium.size();
      medium.append(record);
      const std::size_t bit = position(op, kFlipSalt, record.size() * 8);
      medium[base + bit / 8] =
          static_cast<char>(medium[base + bit / 8] ^ (1u << (bit % 8)));
      ++counts_.bit_flips;
      break;
    }
    case StorageFaultKind::kTruncation: {
      medium.append(record);
      const std::size_t chop =
          1 + position(op, kChopSalt, std::min<std::size_t>(record.size(), 32));
      medium.resize(medium.size() - chop);
      ++counts_.truncations;
      break;
    }
    case StorageFaultKind::kDuplicateRecord: {
      medium.append(record);
      medium.append(record);
      ++counts_.duplicate_records;
      break;
    }
  }
  fault_metrics().injected.inc();
  return kind;
}

StorageFaultKind StorageFaultInjector::on_snapshot_write(std::string& blob,
                                                         std::uint64_t op) {
  const auto kind = decide(op, /*snapshot=*/true);
  switch (kind) {
    case StorageFaultKind::kNone:
    case StorageFaultKind::kDuplicateRecord:  // append-only; not drawn here
      return StorageFaultKind::kNone;
    case StorageFaultKind::kTornWrite: {
      // Models a missing data fsync: the rename became durable against a
      // partially written temp file.
      blob.resize(position(op, kTearSalt, blob.size()));
      ++counts_.torn_writes;
      break;
    }
    case StorageFaultKind::kBitFlip: {
      const std::size_t bit = position(op, kFlipSalt, blob.size() * 8);
      blob[bit / 8] = static_cast<char>(blob[bit / 8] ^ (1u << (bit % 8)));
      ++counts_.bit_flips;
      break;
    }
    case StorageFaultKind::kTruncation: {
      const std::size_t chop =
          1 + position(op, kChopSalt, std::min<std::size_t>(blob.size(), 32));
      blob.resize(blob.size() - chop);
      ++counts_.truncations;
      break;
    }
    case StorageFaultKind::kCrashBeforeRename: {
      blob.clear();
      ++counts_.crashes_before_rename;
      break;
    }
  }
  fault_metrics().injected.inc();
  return kind;
}

}  // namespace selfheal::storage
