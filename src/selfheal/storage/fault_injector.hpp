// Seeded storage-level fault injection for the chaos harness.
//
// Models the ways real disks betray a write-ahead log and its
// snapshots:
//
//   * torn write          -- a crash mid-append persists only the first
//                            k bytes of the record frame;
//   * bit flip            -- media decay / cosmic ray flips one bit of
//                            what was written;
//   * truncation          -- a lost tail sector chops bytes off the end;
//   * duplicated record   -- a retried append lands twice (the client
//                            saw a timeout, the disk saw both);
//   * crash before rename -- an atomic snapshot replace crashes after
//                            writing the temp file but before rename(2):
//                            the new generation simply never appears.
//
// Like chaos::TaskFaultPlan, every decision is a STATELESS hash of
// (seed, operation kind, operation index): the same seed produces the
// same damage pattern regardless of call order, which is the chaos
// determinism contract. The injector mutates in-memory media (byte
// strings) surgically, and keeps ground-truth counts so campaigns can
// prove that no injected fault went unreported.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <string_view>

namespace selfheal::storage {

enum class StorageFaultKind {
  kNone,
  kTornWrite,
  kBitFlip,
  kTruncation,
  kDuplicateRecord,
  kCrashBeforeRename,
};

[[nodiscard]] const char* to_string(StorageFaultKind kind);

struct StorageFaultConfig {
  /// Per-operation probabilities; at most one fault fires per operation.
  double torn_write_rate = 0.0;
  double bit_flip_rate = 0.0;
  double truncation_rate = 0.0;
  /// WAL appends only.
  double duplicate_record_rate = 0.0;
  /// Snapshot writes only.
  double crash_before_rename_rate = 0.0;

  [[nodiscard]] bool enabled() const noexcept {
    return torn_write_rate > 0.0 || bit_flip_rate > 0.0 ||
           truncation_rate > 0.0 || duplicate_record_rate > 0.0 ||
           crash_before_rename_rate > 0.0;
  }
};

/// Ground truth of what was injected (for never-silent assertions).
struct StorageFaultCounts {
  std::size_t torn_writes = 0;
  std::size_t bit_flips = 0;
  std::size_t truncations = 0;
  std::size_t duplicate_records = 0;
  std::size_t crashes_before_rename = 0;

  [[nodiscard]] std::size_t total() const noexcept {
    return torn_writes + bit_flips + truncations + duplicate_records +
           crashes_before_rename;
  }
};

class StorageFaultInjector {
 public:
  StorageFaultInjector(std::uint64_t seed, StorageFaultConfig config)
      : seed_(seed), config_(config) {}

  /// Applies `record` (an encoded WAL frame) to `medium` under the fault
  /// drawn for operation `op`; returns what happened. Fault positions
  /// (tear point, flipped bit, truncated length) are themselves stateless
  /// hashes of (seed, op).
  StorageFaultKind on_wal_append(std::string& medium, std::string_view record,
                                 std::uint64_t op);

  /// Damages (or drops) a freshly encoded snapshot blob in place.
  /// kCrashBeforeRename clears the blob: the old generation remains the
  /// newest visible one.
  StorageFaultKind on_snapshot_write(std::string& blob, std::uint64_t op);

  [[nodiscard]] const StorageFaultCounts& counts() const noexcept {
    return counts_;
  }
  [[nodiscard]] const StorageFaultConfig& config() const noexcept {
    return config_;
  }

 private:
  [[nodiscard]] StorageFaultKind decide(std::uint64_t op, bool snapshot) const;
  /// Deterministic position draw in [0, n) for operation `op`.
  [[nodiscard]] std::size_t position(std::uint64_t op, std::uint64_t salt,
                                     std::size_t n) const;

  std::uint64_t seed_;
  StorageFaultConfig config_;
  StorageFaultCounts counts_;
};

}  // namespace selfheal::storage
