#include "selfheal/storage/crc32c.hpp"

#include <array>

namespace selfheal::storage {

namespace {

constexpr std::uint32_t kPoly = 0x82F63B78u;  // reflected Castagnoli

struct Tables {
  // table[k][b]: CRC contribution of byte b seen k positions ahead.
  std::array<std::array<std::uint32_t, 256>, 8> t{};

  constexpr Tables() {
    for (std::uint32_t b = 0; b < 256; ++b) {
      std::uint32_t crc = b;
      for (int bit = 0; bit < 8; ++bit) {
        crc = (crc >> 1) ^ ((crc & 1u) ? kPoly : 0u);
      }
      t[0][b] = crc;
    }
    for (std::size_t k = 1; k < 8; ++k) {
      for (std::uint32_t b = 0; b < 256; ++b) {
        t[k][b] = (t[k - 1][b] >> 8) ^ t[0][t[k - 1][b] & 0xFFu];
      }
    }
  }
};

constexpr Tables kTables{};

}  // namespace

std::uint32_t crc32c_update(std::uint32_t state, std::string_view data) noexcept {
  const auto& t = kTables.t;
  const auto* p = reinterpret_cast<const unsigned char*>(data.data());
  std::size_t n = data.size();

  // Slice-by-8 over aligned-enough middles; memcpy-free byte loads keep
  // this UB-clean under UBSan (no type-punned reads).
  while (n >= 8) {
    const std::uint32_t lo = state ^ (static_cast<std::uint32_t>(p[0]) |
                                      static_cast<std::uint32_t>(p[1]) << 8 |
                                      static_cast<std::uint32_t>(p[2]) << 16 |
                                      static_cast<std::uint32_t>(p[3]) << 24);
    state = t[7][lo & 0xFFu] ^ t[6][(lo >> 8) & 0xFFu] ^
            t[5][(lo >> 16) & 0xFFu] ^ t[4][lo >> 24] ^ t[3][p[4]] ^
            t[2][p[5]] ^ t[1][p[6]] ^ t[0][p[7]];
    p += 8;
    n -= 8;
  }
  while (n-- > 0) {
    state = (state >> 8) ^ t[0][(state ^ *p++) & 0xFFu];
  }
  return state;
}

std::uint32_t crc32c(std::string_view data) noexcept {
  return crc32c_finish(crc32c_update(crc32c_init(), data));
}

}  // namespace selfheal::storage
