// Atomic, checksummed, generation-numbered snapshots.
//
// A snapshot blob frames an opaque payload (here: a serialised session)
// with enough integrity metadata that ANY single-bit or truncation
// damage is detected, and with a monotonically increasing generation
// number so a reader can always identify the newest intact snapshot:
//
//   0..7    magic "SHSNAPv1"
//   8..11   u32 format version
//   12..19  u64 generation
//   20..27  u64 payload length
//   28..31  u32 CRC32C of bytes 0..27   (header integrity)
//   32..35  u32 CRC32C of the payload   (body integrity)
//   36..    payload
//
// SnapshotChain models the on-disk directory of generations as byte
// blobs (the chaos harness's corruptible "disk"); save_snapshot_file /
// load_snapshot_file bind one blob to a real file via temp+fsync+rename,
// so a crash at any byte boundary leaves either the complete old
// generation or the complete new one -- never a hybrid.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

namespace selfheal::storage {

inline constexpr std::uint32_t kSnapshotVersion = 1;
inline constexpr std::size_t kSnapshotHeaderSize = 36;

enum class SnapshotErrorKind {
  kNone,
  kTruncatedHeader,
  kBadMagic,
  kBadVersion,
  kBadHeaderCrc,
  kLengthMismatch,  // blob shorter or longer than header + declared payload
  kBadPayloadCrc,
};

[[nodiscard]] const char* to_string(SnapshotErrorKind kind);

struct SnapshotDecode {
  SnapshotErrorKind error = SnapshotErrorKind::kNone;
  std::uint64_t generation = 0;
  std::string payload;

  [[nodiscard]] bool ok() const noexcept {
    return error == SnapshotErrorKind::kNone;
  }
};

[[nodiscard]] std::string encode_snapshot(std::uint64_t generation,
                                          std::string_view payload);
[[nodiscard]] SnapshotDecode decode_snapshot(std::string_view blob);

/// An ordered set of snapshot generations (oldest first). Blobs are
/// pushed as raw bytes -- possibly already damaged by a fault injector;
/// latest_valid() is where damage is detected and skipped.
class SnapshotChain {
 public:
  /// The generation number the next write should carry.
  [[nodiscard]] std::uint64_t next_generation() const noexcept {
    return next_generation_;
  }

  /// Consumes a generation number and stores `blob` under it. An empty
  /// blob models a write that never became visible (crash before
  /// rename): the generation number is spent but no file appears.
  void push(std::string blob);

  struct Latest {
    std::uint64_t generation = 0;
    std::string payload;
    /// Newer generations that failed to decode and were skipped.
    std::size_t fallbacks = 0;
  };

  /// Decodes blobs newest-first and returns the first intact one;
  /// nullopt when every generation is damaged (or none exists).
  [[nodiscard]] std::optional<Latest> latest_valid() const;

  [[nodiscard]] std::size_t size() const noexcept { return blobs_.size(); }
  [[nodiscard]] const std::vector<std::string>& blobs() const noexcept {
    return blobs_;
  }
  [[nodiscard]] std::vector<std::string>& mutable_blobs() noexcept {
    return blobs_;
  }

 private:
  std::vector<std::string> blobs_;
  std::uint64_t next_generation_ = 1;
};

/// Encodes and atomically writes one snapshot file (temp+fsync+rename).
void save_snapshot_file(const std::string& path, std::uint64_t generation,
                        std::string_view payload);

/// Reads and decodes one snapshot file. Missing file throws
/// std::runtime_error; corrupt content is reported via SnapshotDecode.
[[nodiscard]] SnapshotDecode load_snapshot_file(const std::string& path);

}  // namespace selfheal::storage
