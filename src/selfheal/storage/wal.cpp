#include "selfheal/storage/wal.hpp"

#include <fcntl.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <stdexcept>

#include "selfheal/obs/metrics.hpp"
#include "selfheal/storage/crc32c.hpp"
#include "selfheal/util/fsio.hpp"

namespace selfheal::storage {

namespace {

constexpr char kMagic[8] = {'S', 'H', 'W', 'A', 'L', 'v', '1', '\0'};

struct WalMetrics {
  obs::Counter& appends = obs::metrics().counter("storage.wal.appends");
  obs::Counter& append_bytes = obs::metrics().counter("storage.wal.append_bytes");
  obs::Counter& seals = obs::metrics().counter("storage.wal.seals");
  obs::Counter& scans = obs::metrics().counter("storage.wal.scans");
  obs::Counter& records_scanned =
      obs::metrics().counter("storage.wal.records_scanned");
  obs::Counter& torn_tails = obs::metrics().counter("storage.wal.torn_tails");
  obs::Counter& mid_log_corruptions =
      obs::metrics().counter("storage.wal.mid_log_corruptions");
  obs::Counter& header_errors =
      obs::metrics().counter("storage.wal.header_errors");
};

WalMetrics& wal_metrics() {
  static WalMetrics m;
  return m;
}

void put_u32(std::string& out, std::uint32_t v) {
  out.push_back(static_cast<char>(v & 0xFF));
  out.push_back(static_cast<char>((v >> 8) & 0xFF));
  out.push_back(static_cast<char>((v >> 16) & 0xFF));
  out.push_back(static_cast<char>((v >> 24) & 0xFF));
}

std::uint32_t get_u32(std::string_view in, std::size_t at) {
  const auto b = [&](std::size_t i) {
    return static_cast<std::uint32_t>(static_cast<unsigned char>(in[at + i]));
  };
  return b(0) | (b(1) << 8) | (b(2) << 16) | (b(3) << 24);
}

bool known_type(std::uint8_t type) {
  return type == static_cast<std::uint8_t>(WalRecordType::kData) ||
         type == static_cast<std::uint8_t>(WalRecordType::kMeta) ||
         type == static_cast<std::uint8_t>(WalRecordType::kSeal);
}

}  // namespace

const char* to_string(WalErrorKind kind) {
  switch (kind) {
    case WalErrorKind::kNone: return "none";
    case WalErrorKind::kTruncatedHeader: return "truncated header";
    case WalErrorKind::kBadMagic: return "bad magic";
    case WalErrorKind::kBadVersion: return "unknown format version";
    case WalErrorKind::kBadHeaderCrc: return "header checksum mismatch";
    case WalErrorKind::kTornTail: return "torn tail";
    case WalErrorKind::kMidLogCorruption: return "mid-log corruption";
    case WalErrorKind::kImplausibleLength: return "implausible record length";
    case WalErrorKind::kTrailingData: return "data after seal";
    case WalErrorKind::kUnknownRecordType: return "unknown record type";
  }
  return "?";
}

std::string WalError::message() const {
  if (ok()) return "ok";
  return std::string(to_string(kind)) + " at byte " + std::to_string(offset) +
         " (record " + std::to_string(record_index) + ")";
}

std::string wal_header() {
  std::string out(kMagic, sizeof(kMagic));
  put_u32(out, kWalVersion);
  put_u32(out, crc32c(out));
  return out;
}

std::string encode_wal_record(WalRecordType type, std::string_view payload) {
  std::string framed;
  framed.reserve(kWalFrameOverhead + payload.size());
  put_u32(framed, static_cast<std::uint32_t>(payload.size()));
  std::string body;
  body.reserve(1 + payload.size());
  body.push_back(static_cast<char>(type));
  body.append(payload);
  put_u32(framed, crc32c(body));
  framed.append(body);
  return framed;
}

void wal_append(std::string& wal, WalRecordType type, std::string_view payload) {
  auto& m = wal_metrics();
  m.appends.inc();
  m.append_bytes.inc(kWalFrameOverhead + payload.size());
  wal.append(encode_wal_record(type, payload));
}

void wal_seal(std::string& wal) {
  wal_metrics().seals.inc();
  wal.append(encode_wal_record(WalRecordType::kSeal, {}));
}

WalScan scan_wal(std::string_view wal) {
  auto& m = wal_metrics();
  m.scans.inc();
  WalScan scan;

  // --- header ---
  if (wal.size() < kWalHeaderSize) {
    scan.error.kind = WalErrorKind::kTruncatedHeader;
    m.header_errors.inc();
    return scan;
  }
  if (std::memcmp(wal.data(), kMagic, sizeof(kMagic)) != 0) {
    scan.error.kind = WalErrorKind::kBadMagic;
    m.header_errors.inc();
    return scan;
  }
  if (crc32c(wal.substr(0, 12)) != get_u32(wal, 12)) {
    scan.error.kind = WalErrorKind::kBadHeaderCrc;
    scan.error.offset = 12;
    m.header_errors.inc();
    return scan;
  }
  if (get_u32(wal, 8) != kWalVersion) {
    scan.error.kind = WalErrorKind::kBadVersion;
    scan.error.offset = 8;
    m.header_errors.inc();
    return scan;
  }
  scan.valid_bytes = kWalHeaderSize;

  // --- record frames ---
  std::size_t at = kWalHeaderSize;
  while (at < wal.size()) {
    scan.error.offset = at;
    scan.error.record_index = scan.records.size();
    if (scan.sealed) {
      scan.error.kind = WalErrorKind::kTrailingData;
      m.mid_log_corruptions.inc();
      return scan;
    }
    // Frame header complete?
    if (wal.size() - at < kWalFrameOverhead) {
      scan.error.kind = WalErrorKind::kTornTail;
      m.torn_tails.inc();
      return scan;
    }
    const std::size_t len = get_u32(wal, at);
    const std::uint32_t want_crc = get_u32(wal, at + 4);
    if (len > kWalMaxRecordLen) {
      // A corrupted length field: cannot even tell where the next frame
      // would start, so nothing beyond this point is reachable.
      scan.error.kind = WalErrorKind::kImplausibleLength;
      m.mid_log_corruptions.inc();
      return scan;
    }
    const std::size_t frame_end = at + kWalFrameOverhead + len;
    if (frame_end > wal.size()) {
      scan.error.kind = WalErrorKind::kTornTail;
      m.torn_tails.inc();
      return scan;
    }
    const std::string_view body = wal.substr(at + 8, 1 + len);
    if (crc32c(body) != want_crc) {
      // CRC failure at the very tail is a torn append (truncate and
      // carry on); with live bytes after the frame it is body damage.
      if (frame_end == wal.size()) {
        scan.error.kind = WalErrorKind::kTornTail;
        m.torn_tails.inc();
      } else {
        scan.error.kind = WalErrorKind::kMidLogCorruption;
        m.mid_log_corruptions.inc();
      }
      return scan;
    }
    const auto type = static_cast<std::uint8_t>(body[0]);
    if (!known_type(type)) {
      scan.error.kind = WalErrorKind::kUnknownRecordType;
      m.mid_log_corruptions.inc();
      return scan;
    }
    if (static_cast<WalRecordType>(type) == WalRecordType::kSeal) {
      scan.sealed = true;
    } else {
      WalRecord record;
      record.type = static_cast<WalRecordType>(type);
      record.payload.assign(body.substr(1));
      record.offset = at;
      scan.records.push_back(std::move(record));
      m.records_scanned.inc();
    }
    at = frame_end;
    scan.valid_bytes = at;
  }
  scan.error = WalError{};  // clean walk: clear the probe offsets
  scan.error.record_index = scan.records.size();
  scan.error.offset = scan.valid_bytes;
  return scan;
}

WalFile::WalFile(std::string path) : path_(std::move(path)) {
  fd_ = ::open(path_.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0644);
  if (fd_ < 0) {
    throw std::runtime_error("WalFile: cannot create " + path_ + ": " +
                             std::strerror(errno));
  }
  const auto header = wal_header();
  std::size_t written = 0;
  while (written < header.size()) {
    const ssize_t n =
        ::write(fd_, header.data() + written, header.size() - written);
    if (n < 0) {
      if (errno == EINTR) continue;
      throw std::runtime_error("WalFile: header write failed: " +
                               std::string(std::strerror(errno)));
    }
    written += static_cast<std::size_t>(n);
  }
}

WalFile::~WalFile() { close(); }

void WalFile::append(WalRecordType type, std::string_view payload) {
  if (fd_ < 0) throw std::logic_error("WalFile: append after close");
  auto& m = wal_metrics();
  m.appends.inc();
  m.append_bytes.inc(kWalFrameOverhead + payload.size());
  const auto framed = encode_wal_record(type, payload);
  std::size_t written = 0;
  while (written < framed.size()) {
    const ssize_t n =
        ::write(fd_, framed.data() + written, framed.size() - written);
    if (n < 0) {
      if (errno == EINTR) continue;
      throw std::runtime_error("WalFile: append failed: " +
                               std::string(std::strerror(errno)));
    }
    written += static_cast<std::size_t>(n);
  }
}

void WalFile::sync() {
  if (fd_ < 0) return;
  if (::fsync(fd_) != 0) {
    throw std::runtime_error("WalFile: fsync failed: " +
                             std::string(std::strerror(errno)));
  }
}

void WalFile::seal() {
  wal_metrics().seals.inc();
  append(WalRecordType::kSeal, {});
  sync();
}

void WalFile::close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

WalScan scan_wal_file(const std::string& path) {
  return scan_wal(util::read_file(path));
}

}  // namespace selfheal::storage
