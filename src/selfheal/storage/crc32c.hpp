// CRC32C (Castagnoli, polynomial 0x1EDC6F41, reflected 0x82F63B78):
// the checksum protecting every WAL record and snapshot blob. Chosen
// over CRC32 (IEEE) for its better error-detection properties on short
// records -- the same choice ext4, btrfs, LevelDB and iSCSI made.
//
// Software slice-by-8 implementation (~1 byte/cycle): fast enough that
// checksumming is never the WAL append bottleneck, with no dependency
// on SSE4.2 intrinsics the build may not be allowed to assume.
#pragma once

#include <cstdint>
#include <string_view>

namespace selfheal::storage {

/// One-shot CRC32C of `data`.
[[nodiscard]] std::uint32_t crc32c(std::string_view data) noexcept;

/// Streaming interface: feed chunks through crc32c_update, starting from
/// crc32c_init() and sealing with crc32c_finish. crc32c(data) ==
/// crc32c_finish(crc32c_update(crc32c_init(), data)).
[[nodiscard]] constexpr std::uint32_t crc32c_init() noexcept {
  return 0xFFFFFFFFu;
}
[[nodiscard]] std::uint32_t crc32c_update(std::uint32_t state,
                                          std::string_view data) noexcept;
[[nodiscard]] constexpr std::uint32_t crc32c_finish(std::uint32_t state) noexcept {
  return state ^ 0xFFFFFFFFu;
}

}  // namespace selfheal::storage
