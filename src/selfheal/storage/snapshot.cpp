#include "selfheal/storage/snapshot.hpp"

#include <cstring>

#include "selfheal/obs/metrics.hpp"
#include "selfheal/storage/crc32c.hpp"
#include "selfheal/util/fsio.hpp"

namespace selfheal::storage {

namespace {

constexpr char kMagic[8] = {'S', 'H', 'S', 'N', 'A', 'P', 'v', '1'};

struct SnapshotMetrics {
  obs::Counter& writes = obs::metrics().counter("storage.snapshot.writes");
  obs::Counter& write_bytes =
      obs::metrics().counter("storage.snapshot.write_bytes");
  obs::Counter& decode_failures =
      obs::metrics().counter("storage.snapshot.decode_failures");
  obs::Counter& fallbacks = obs::metrics().counter("storage.snapshot.fallbacks");
};

SnapshotMetrics& snapshot_metrics() {
  static SnapshotMetrics m;
  return m;
}

void put_u32(std::string& out, std::uint32_t v) {
  for (int i = 0; i < 4; ++i) out.push_back(static_cast<char>((v >> (8 * i)) & 0xFF));
}

void put_u64(std::string& out, std::uint64_t v) {
  for (int i = 0; i < 8; ++i) out.push_back(static_cast<char>((v >> (8 * i)) & 0xFF));
}

std::uint32_t get_u32(std::string_view in, std::size_t at) {
  std::uint32_t v = 0;
  for (int i = 3; i >= 0; --i) {
    v = (v << 8) | static_cast<unsigned char>(in[at + static_cast<std::size_t>(i)]);
  }
  return v;
}

std::uint64_t get_u64(std::string_view in, std::size_t at) {
  std::uint64_t v = 0;
  for (int i = 7; i >= 0; --i) {
    v = (v << 8) | static_cast<unsigned char>(in[at + static_cast<std::size_t>(i)]);
  }
  return v;
}

}  // namespace

const char* to_string(SnapshotErrorKind kind) {
  switch (kind) {
    case SnapshotErrorKind::kNone: return "none";
    case SnapshotErrorKind::kTruncatedHeader: return "truncated header";
    case SnapshotErrorKind::kBadMagic: return "bad magic";
    case SnapshotErrorKind::kBadVersion: return "unknown format version";
    case SnapshotErrorKind::kBadHeaderCrc: return "header checksum mismatch";
    case SnapshotErrorKind::kLengthMismatch: return "length mismatch";
    case SnapshotErrorKind::kBadPayloadCrc: return "payload checksum mismatch";
  }
  return "?";
}

std::string encode_snapshot(std::uint64_t generation, std::string_view payload) {
  auto& m = snapshot_metrics();
  m.writes.inc();
  m.write_bytes.inc(kSnapshotHeaderSize + payload.size());

  std::string blob;
  blob.reserve(kSnapshotHeaderSize + payload.size());
  blob.append(kMagic, sizeof(kMagic));
  put_u32(blob, kSnapshotVersion);
  put_u64(blob, generation);
  put_u64(blob, payload.size());
  put_u32(blob, crc32c(blob));  // header crc over bytes 0..27
  put_u32(blob, crc32c(payload));
  blob.append(payload);
  return blob;
}

SnapshotDecode decode_snapshot(std::string_view blob) {
  SnapshotDecode out;
  if (blob.size() < kSnapshotHeaderSize) {
    out.error = SnapshotErrorKind::kTruncatedHeader;
    return out;
  }
  if (std::memcmp(blob.data(), kMagic, sizeof(kMagic)) != 0) {
    out.error = SnapshotErrorKind::kBadMagic;
    return out;
  }
  if (crc32c(blob.substr(0, 28)) != get_u32(blob, 28)) {
    out.error = SnapshotErrorKind::kBadHeaderCrc;
    return out;
  }
  if (get_u32(blob, 8) != kSnapshotVersion) {
    out.error = SnapshotErrorKind::kBadVersion;
    return out;
  }
  out.generation = get_u64(blob, 12);
  const std::uint64_t len = get_u64(blob, 20);
  if (blob.size() != kSnapshotHeaderSize + len) {
    out.error = SnapshotErrorKind::kLengthMismatch;
    return out;
  }
  const auto payload = blob.substr(kSnapshotHeaderSize);
  if (crc32c(payload) != get_u32(blob, 32)) {
    out.error = SnapshotErrorKind::kBadPayloadCrc;
    return out;
  }
  out.payload.assign(payload);
  return out;
}

void SnapshotChain::push(std::string blob) {
  ++next_generation_;
  if (!blob.empty()) blobs_.push_back(std::move(blob));
}

std::optional<SnapshotChain::Latest> SnapshotChain::latest_valid() const {
  auto& m = snapshot_metrics();
  Latest latest;
  for (auto it = blobs_.rbegin(); it != blobs_.rend(); ++it) {
    auto decoded = decode_snapshot(*it);
    if (!decoded.ok()) {
      m.decode_failures.inc();
      ++latest.fallbacks;
      continue;
    }
    if (latest.fallbacks > 0) m.fallbacks.inc(latest.fallbacks);
    latest.generation = decoded.generation;
    latest.payload = std::move(decoded.payload);
    return latest;
  }
  return std::nullopt;
}

void save_snapshot_file(const std::string& path, std::uint64_t generation,
                        std::string_view payload) {
  util::write_file_atomic(path, encode_snapshot(generation, payload));
}

SnapshotDecode load_snapshot_file(const std::string& path) {
  return decode_snapshot(util::read_file(path));
}

}  // namespace selfheal::storage
