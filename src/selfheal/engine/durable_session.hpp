// Crash-consistent durable session state: snapshot chain + WAL.
//
// A DurableSessionStore mirrors a live engine onto corruptible media:
//
//   * checkpoint()  -- a full session snapshot (session_io v3 text,
//     framed by storage::encode_snapshot with a generation number) plus
//     a FRESH write-ahead log whose first record pins the snapshot it
//     extends ("base <generation> <log size>");
//   * on_commit / on_control_change (DurabilityObserver) -- every log
//     commit and run-control change lands in the WAL as one record, in
//     the same text format the session file uses.
//
// recover() rebuilds a session from whatever survived: newest intact
// snapshot (falling back over damaged generations), then an idempotent
// WAL replay -- duplicated records are detected and skipped, a torn
// tail is truncated, an id gap stops replay. Every anomaly is reported
// in RecoveryReport; the chaos harness's contract is that recovery is
// either byte-identical to the pre-crash state or EXPLICITLY degraded
// -- a silent wrong answer is the one outcome that must never happen.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>

#include "selfheal/engine/engine.hpp"
#include "selfheal/engine/session_io.hpp"
#include "selfheal/storage/fault_injector.hpp"
#include "selfheal/storage/snapshot.hpp"
#include "selfheal/storage/wal.hpp"

namespace selfheal::engine {

/// What recover() found on the way back up. Default-constructed ==
/// pristine media, lossless recovery.
struct RecoveryReport {
  /// Snapshot the recovered session is based on (0 = none survived).
  std::uint64_t snapshot_generation = 0;
  /// Newer snapshot generations skipped as damaged.
  std::size_t snapshot_fallbacks = 0;
  std::size_t wal_records_replayed = 0;
  /// WAL records dropped as duplicates of already-imported entries
  /// (a retried append that landed twice; detected and masked).
  std::size_t wal_duplicates_skipped = 0;
  /// The WAL's base record disagrees with the recovered snapshot: the
  /// log extends a generation that did not survive.
  bool wal_base_mismatch = false;
  /// A structurally intact WAL record failed to parse.
  bool wal_parse_failure = false;
  /// Structural damage found by the WAL scan (kNone if clean).
  storage::WalError wal_error;
  /// Committed state is provably or possibly missing from the
  /// recovered session (the explicit-degradation flag).
  bool lost_updates = false;
  /// No snapshot generation survived at all; no session was recovered.
  bool unrecoverable = false;

  /// Recovery is lossless AND saw pristine media.
  [[nodiscard]] bool clean() const noexcept {
    return !unrecoverable && !lost_updates && !wal_base_mismatch &&
           !wal_parse_failure && wal_error.ok() && snapshot_fallbacks == 0 &&
           wal_duplicates_skipped == 0;
  }
  /// Recovery saw damage of some kind (even if fully masked).
  [[nodiscard]] bool detected_damage() const noexcept { return !clean(); }
  /// The recovered session provably matches the pre-crash state
  /// (damage, if any, was masked: e.g. duplicates skipped).
  [[nodiscard]] bool lossless() const noexcept {
    return !unrecoverable && !lost_updates;
  }
  [[nodiscard]] std::string summary() const;
};

/// The durable face of one engine. Attach with
/// engine.set_durability_observer(&store) after a checkpoint; media
/// (snapshot chain + WAL byte string) live in memory so the chaos
/// harness can corrupt them deterministically via a
/// storage::StorageFaultInjector.
class DurableSessionStore final : public DurabilityObserver {
 public:
  /// `faults` (borrowed, may be null) damages writes as they happen.
  explicit DurableSessionStore(storage::StorageFaultInjector* faults = nullptr)
      : faults_(faults) {}

  /// Installs (or clears) the fault injector after construction -- the
  /// chaos harness writes its initial checkpoint pristine (the durable
  /// state that existed before the storm) and arms faults afterwards.
  void set_fault_injector(storage::StorageFaultInjector* faults) noexcept {
    faults_ = faults;
  }

  /// Writes a full snapshot of `engine` as the next generation and
  /// starts a fresh WAL based on it.
  void checkpoint(const Engine& engine);

  /// Batch scope: commits observed between begin_batch() and
  /// end_batch() coalesce into ONE WAL record. The record is the
  /// recovery unit -- any damage rewinds to a record boundary -- so the
  /// caller brackets its own atomic unit of work (e.g. one controller
  /// step, which may commit several log entries) to guarantee recovery
  /// never resumes from a state mid-way through it.
  void begin_batch() { batch_open_ = true; }
  void end_batch();
  /// Abandons the open batch WITHOUT emitting a record -- the exception
  /// path. The media keeps only whole committed steps, so a step that
  /// threw half-way leaves the WAL exactly as it was at the previous
  /// step boundary (recover() then resumes from there). No-op when no
  /// batch is open.
  void abort_batch() noexcept {
    batch_open_ = false;
    batch_.clear();
  }

  /// Group-commit scope: records emitted between begin_group() and
  /// end_group() keep their individual frames (the WAL byte stream and
  /// the one-step-one-record rewind unit are unchanged) but land on the
  /// media as ONE append -- one op index, one notional fsync. This is
  /// how the parallel recovery executor amortises durability across a
  /// batch of worker commits. A group inside an open batch is a no-op
  /// (the batch already coalesces payloads into a single record).
  void begin_group() { group_open_ = true; }
  void end_group();

  // DurabilityObserver:
  void on_commit(const Engine& engine, const TaskInstance& entry) override;
  void on_control_change(const Engine& engine, RunId run) override;
  void on_group_begin() override { begin_group(); }
  void on_group_end() override { end_group(); }

  /// Rebuilds a session from the surviving media. On unrecoverable
  /// media the returned Session has a null engine and
  /// `report.unrecoverable` is set. Never throws on damaged media --
  /// damage is the expected input here.
  [[nodiscard]] Session recover(RecoveryReport& report) const;

  /// Serialises the complete media state -- snapshot chain, WAL bytes,
  /// and the base/op counters that make future checkpoints land with
  /// the same generation numbers -- for replica state transfer. Only
  /// meaningful at a step boundary (no open batch or group).
  [[nodiscard]] std::string export_media() const;
  /// Replaces this store's media with an export_media() blob, so the
  /// importing store's future byte stream is identical to the source's.
  /// Throws std::invalid_argument on malformed input.
  void import_media(const std::string& blob);

  [[nodiscard]] const storage::SnapshotChain& snapshots() const noexcept {
    return snapshots_;
  }
  [[nodiscard]] storage::SnapshotChain& mutable_snapshots() noexcept {
    return snapshots_;
  }
  [[nodiscard]] const std::string& wal() const noexcept { return wal_; }
  [[nodiscard]] std::string& mutable_wal() noexcept { return wal_; }
  /// Monotone count of media write operations (fault-plan op indices).
  [[nodiscard]] std::uint64_t ops() const noexcept { return op_index_; }

 private:
  void wal_record(storage::WalRecordType type, std::string_view payload);
  /// Routes a data payload through the open batch, or straight to a
  /// WAL record when no batch is open.
  void emit(std::string_view payload);

  storage::StorageFaultInjector* faults_ = nullptr;
  storage::SnapshotChain snapshots_;
  std::string wal_;
  bool batch_open_ = false;
  std::string batch_;
  bool group_open_ = false;
  std::string group_;  // encoded record frames awaiting one media append
  /// Generation + log size the current WAL extends.
  std::uint64_t base_generation_ = 0;
  std::size_t base_log_size_ = 0;
  std::uint64_t op_index_ = 0;
};

}  // namespace selfheal::engine
