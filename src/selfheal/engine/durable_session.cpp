#include "selfheal/engine/durable_session.hpp"

#include <charconv>
#include <sstream>
#include <stdexcept>
#include <string_view>

#include "selfheal/obs/metrics.hpp"

namespace selfheal::engine {

namespace {

struct DurableMetrics {
  obs::Counter& checkpoints = obs::metrics().counter("storage.checkpoints");
  obs::Counter& wal_records = obs::metrics().counter("storage.wal_records");
  obs::Counter& recoveries = obs::metrics().counter("storage.recover.attempts");
  obs::Counter& replayed =
      obs::metrics().counter("storage.recover.replayed_records");
  obs::Counter& lost_updates =
      obs::metrics().counter("storage.recover.lost_updates");
  obs::Counter& unrecoverable =
      obs::metrics().counter("storage.recover.unrecoverable");
};

DurableMetrics& durable_metrics() {
  static DurableMetrics m;
  return m;
}

/// Strict local integer parse (the WAL payload is adversarial input:
/// a bit flip can survive into a CRC-colliding record in principle, and
/// tests feed hand-damaged records).
template <typename T>
bool parse_int(std::string_view token, T& out) {
  const auto result =
      std::from_chars(token.data(), token.data() + token.size(), out);
  return !token.empty() && result.ec == std::errc() &&
         result.ptr == token.data() + token.size();
}

bool next_token(std::istringstream& in, std::string& token) {
  return static_cast<bool>(in >> token);
}

/// "control <run> <active> <aborted> <pc> visits t:c... pending t:i..."
std::string format_run_control(const Engine& engine, RunId run) {
  const auto snapshot = engine.run_snapshot(run);
  std::ostringstream out;
  out << "control " << run << " " << (snapshot.active ? 1 : 0) << " "
      << (snapshot.aborted ? 1 : 0) << " " << snapshot.pc << " visits";
  for (const auto& [task, count] : snapshot.visits) {
    out << " " << task << ":" << count;
  }
  out << " pending";
  for (const auto& [task, inc] : snapshot.pending_malicious) {
    out << " " << task << ":" << inc;
  }
  return out.str();
}

bool parse_pair(const std::string& token, std::int64_t& first,
                std::int64_t& second) {
  const auto colon = token.find(':');
  if (colon == std::string::npos) return false;
  return parse_int(std::string_view(token).substr(0, colon), first) &&
         parse_int(std::string_view(token).substr(colon + 1), second);
}

/// Applies a control record to the engine; false on malformed payload.
bool apply_run_control(Engine& engine, const std::string& payload) {
  std::istringstream in(payload);
  std::string token;
  if (!next_token(in, token) || token != "control") return false;
  RunId run = 0;
  int active = 0;
  int aborted = 0;
  wfspec::TaskId pc = wfspec::kInvalidTask;
  if (!next_token(in, token) || !parse_int(token, run)) return false;
  if (!next_token(in, token) || !parse_int(token, active)) return false;
  if (!next_token(in, token) || !parse_int(token, aborted)) return false;
  if (!next_token(in, token) || !parse_int(token, pc)) return false;
  if (run < 0 || static_cast<std::size_t>(run) >= engine.run_count()) {
    return false;
  }
  if (!next_token(in, token) || token != "visits") return false;
  std::map<wfspec::TaskId, int> visits;
  bool saw_pending = false;
  while (next_token(in, token)) {
    if (token == "pending") {
      saw_pending = true;
      break;
    }
    std::int64_t task = 0;
    std::int64_t count = 0;
    if (!parse_pair(token, task, count)) return false;
    visits[static_cast<wfspec::TaskId>(task)] = static_cast<int>(count);
  }
  if (!saw_pending) return false;
  std::vector<std::pair<wfspec::TaskId, int>> pending;
  while (next_token(in, token)) {
    std::int64_t task = 0;
    std::int64_t inc = 0;
    if (!parse_pair(token, task, inc)) return false;
    pending.emplace_back(static_cast<wfspec::TaskId>(task),
                         static_cast<int>(inc));
  }
  try {
    engine.resume_run(run, active != 0 ? pc : wfspec::kInvalidTask, visits);
    if (aborted != 0 && !engine.run_aborted(run)) engine.abort_run(run);
    for (const auto& [task, inc] : pending) {
      engine.inject_malicious(run, task, inc);
    }
  } catch (const std::exception&) {
    return false;
  }
  return true;
}

}  // namespace

std::string RecoveryReport::summary() const {
  std::ostringstream out;
  if (unrecoverable) return "unrecoverable: no intact snapshot generation";
  out << "base generation " << snapshot_generation;
  if (snapshot_fallbacks > 0) out << " (+" << snapshot_fallbacks << " fallbacks)";
  out << ", " << wal_records_replayed << " records replayed";
  if (wal_duplicates_skipped > 0) {
    out << ", " << wal_duplicates_skipped << " duplicates skipped";
  }
  if (!wal_error.ok()) out << ", wal: " << wal_error.message();
  if (wal_base_mismatch) out << ", wal base mismatch";
  if (wal_parse_failure) out << ", wal parse failure";
  out << (lost_updates ? ", LOST UPDATES" : ", lossless");
  return out.str();
}

void DurableSessionStore::wal_record(storage::WalRecordType type,
                                     std::string_view payload) {
  durable_metrics().wal_records.inc();
  if (group_open_ && type == storage::WalRecordType::kData) {
    // Buffer the fully-framed record; end_group() lands the whole batch
    // as one media append. Meta records (checkpoint base) bypass the
    // group: they belong to the fresh WAL, not the commit batch.
    group_ += storage::encode_wal_record(type, payload);
    return;
  }
  if (faults_ != nullptr) {
    faults_->on_wal_append(wal_, storage::encode_wal_record(type, payload),
                           op_index_++);
  } else {
    ++op_index_;
    storage::wal_append(wal_, type, payload);
  }
}

void DurableSessionStore::end_group() {
  group_open_ = false;
  if (group_.empty()) return;
  if (faults_ != nullptr) {
    faults_->on_wal_append(wal_, group_, op_index_++);
  } else {
    ++op_index_;
    wal_ += group_;
  }
  group_.clear();
}

void DurableSessionStore::emit(std::string_view payload) {
  if (batch_open_) {
    if (!batch_.empty()) batch_ += '\n';
    batch_ += payload;
    return;
  }
  wal_record(storage::WalRecordType::kData, payload);
}

void DurableSessionStore::end_batch() {
  batch_open_ = false;
  if (batch_.empty()) return;
  wal_record(storage::WalRecordType::kData, batch_);
  batch_.clear();
}

void DurableSessionStore::checkpoint(const Engine& engine) {
  durable_metrics().checkpoints.inc();
  // A checkpoint subsumes anything still buffered: the snapshot reads
  // the live engine, which already includes those commits.
  batch_.clear();
  batch_open_ = false;
  group_.clear();
  group_open_ = false;
  std::ostringstream text;
  save_session(engine, text);
  const auto generation = snapshots_.next_generation();
  auto blob = storage::encode_snapshot(generation, text.str());
  auto fault = storage::StorageFaultKind::kNone;
  if (faults_ != nullptr) {
    fault = faults_->on_snapshot_write(blob, op_index_++);
  } else {
    ++op_index_;
  }
  snapshots_.push(std::move(blob));
  if (fault == storage::StorageFaultKind::kCrashBeforeRename) {
    // The rename never became durable, and a real writer would know
    // (crashed mid-checkpoint): the previous snapshot + WAL stay
    // authoritative, so keep appending to the old log.
    return;
  }
  // Torn/flipped snapshot damage is NOT observable at write time (fsync
  // succeeded, the media lied), so the WAL is truncated and based on
  // the new generation regardless -- recovery detects the mismatch.
  base_generation_ = generation;
  base_log_size_ = engine.log().size();
  wal_ = storage::wal_header();
  wal_record(storage::WalRecordType::kMeta,
             "base " + std::to_string(generation) + " " +
                 std::to_string(base_log_size_));
}

void DurableSessionStore::on_commit(const Engine& engine,
                                    const TaskInstance& entry) {
  if (entry.kind == ActionKind::kNormal ||
      entry.kind == ActionKind::kMalicious) {
    // Original executions move the run's pc/visits with the commit. The
    // entry and its control state must land ATOMICALLY -- as one record
    // -- or damage between the two would recover a log that disagrees
    // with its run control (the entry exists but the pc never advanced,
    // so replaying the engine re-executes it). Every WAL record is a
    // consistent state boundary; replay applies each payload line.
    emit(format_log_entry(entry) + "\n" + format_run_control(engine, entry.run));
  } else {
    emit(format_log_entry(entry));
  }
}

void DurableSessionStore::on_control_change(const Engine& engine, RunId run) {
  emit(format_run_control(engine, run));
}

Session DurableSessionStore::recover(RecoveryReport& report) const {
  auto& m = durable_metrics();
  m.recoveries.inc();
  report = RecoveryReport{};

  // 1. Newest snapshot generation that is both intact (checksums) and
  // parseable (session checksum + grammar).
  Session session;
  bool have_session = false;
  const auto& blobs = snapshots_.blobs();
  for (auto it = blobs.rbegin(); it != blobs.rend(); ++it) {
    auto decoded = storage::decode_snapshot(*it);
    if (decoded.ok()) {
      std::istringstream in(decoded.payload);
      try {
        session = load_session(in);
        report.snapshot_generation = decoded.generation;
        have_session = true;
        break;
      } catch (const std::exception&) {
        // CRC-valid yet unparseable: count as a damaged generation.
      }
    }
    ++report.snapshot_fallbacks;
  }
  if (!have_session) {
    report.unrecoverable = true;
    report.lost_updates = true;
    m.unrecoverable.inc();
    m.lost_updates.inc();
    return Session{};
  }

  // 2. WAL scan: structural damage is data here, never an exception.
  const auto scan = storage::scan_wal(wal_);
  report.wal_error = scan.error;
  if (!scan.error.ok()) {
    // Any structural damage means at least one appended record did not
    // survive to the scan (tear, flip, truncation): conservatively a
    // lost update even when the tail happens to be reconstructible.
    report.lost_updates = true;
  }

  // 3. The WAL must extend exactly the snapshot we recovered.
  std::uint64_t base_generation = 0;
  std::uint64_t base_log_size = 0;
  bool have_base = false;
  if (!scan.records.empty() &&
      scan.records.front().type == storage::WalRecordType::kMeta) {
    std::istringstream in(scan.records.front().payload);
    std::string keyword;
    std::string generation_token;
    std::string size_token;
    if ((in >> keyword >> generation_token >> size_token) &&
        keyword == "base" && parse_int(generation_token, base_generation) &&
        parse_int(size_token, base_log_size)) {
      have_base = true;
    }
  }
  if (!have_base || base_generation != report.snapshot_generation ||
      base_log_size != session.engine->log().size()) {
    report.wal_base_mismatch = true;
    // The WAL extends a state that did not survive (typically a damaged
    // newer snapshot generation). Whatever happened between the
    // recovered snapshot and the WAL's base -- commits, control changes
    // -- left no trace in this log, so losslessness cannot be claimed
    // even when the WAL itself is empty.
    report.lost_updates = true;
    m.lost_updates.inc();
    return session;
  }

  // 4. Idempotent replay: entries append in id order; duplicates (a
  // retried append that landed twice) are skipped; an id gap means a
  // record vanished between survivors -- stop, flag lost updates.
  for (std::size_t i = 1; i < scan.records.size(); ++i) {
    const auto& record = scan.records[i];
    if (record.type == storage::WalRecordType::kSeal) break;
    if (record.type == storage::WalRecordType::kMeta) {
      // Only the base record (frame 0) is meaningful; a later meta is a
      // duplicated base append -- detected, masked.
      ++report.wal_duplicates_skipped;
      continue;
    }
    // A record may carry several newline-separated lines (an original
    // entry travels with its control state); the record is the atomic
    // unit, its lines apply together.
    bool record_ok = true;
    bool duplicate = false;
    std::istringstream lines(record.payload);
    std::string line;
    while (record_ok && std::getline(lines, line)) {
      if (line.rfind("entry ", 0) == 0) {
        TaskInstance entry;
        try {
          entry = parse_log_entry(line);
        } catch (const std::exception&) {
          record_ok = false;
          break;
        }
        const auto next_id =
            static_cast<InstanceId>(session.engine->log().size());
        if (entry.id < next_id) {
          duplicate = true;
          continue;  // a retried append that landed twice; its control
                     // line re-applies idempotently below
        }
        if (entry.id > next_id) {
          // A record vanished between survivors: unreachable suffix.
          report.lost_updates = true;
          record_ok = false;
          break;
        }
        try {
          session.engine->import_entry(std::move(entry));
        } catch (const std::exception&) {
          record_ok = false;
          break;
        }
      } else if (line.rfind("control", 0) == 0) {
        if (!apply_run_control(*session.engine, line)) {
          record_ok = false;
          break;
        }
      } else {
        record_ok = false;
        break;
      }
    }
    if (!record_ok) {
      if (!report.lost_updates) report.wal_parse_failure = true;
      report.lost_updates = true;
      break;
    }
    if (duplicate) {
      ++report.wal_duplicates_skipped;
    } else {
      ++report.wal_records_replayed;
      m.replayed.inc();
    }
  }
  if (report.lost_updates) m.lost_updates.inc();
  return session;
}

std::string DurableSessionStore::export_media() const {
  std::ostringstream out;
  out << "media v1 " << snapshots_.blobs().size() << " " << wal_.size() << " "
      << base_generation_ << " " << base_log_size_ << " " << op_index_ << "\n";
  for (const auto& blob : snapshots_.blobs()) {
    out << "blob " << blob.size() << "\n" << blob;
  }
  out << wal_;
  return out.str();
}

void DurableSessionStore::import_media(const std::string& blob) {
  const auto bad = [](const std::string& what) {
    throw std::invalid_argument("media import: " + what);
  };
  std::size_t pos = blob.find('\n');
  if (pos == std::string::npos) bad("missing header line");
  std::istringstream head(blob.substr(0, pos));
  std::string magic;
  std::string version;
  std::size_t n_blobs = 0;
  std::size_t wal_bytes = 0;
  std::uint64_t base_generation = 0;
  std::size_t base_log_size = 0;
  std::uint64_t op_index = 0;
  if (!(head >> magic >> version >> n_blobs >> wal_bytes >> base_generation >>
        base_log_size >> op_index) ||
      magic != "media" || version != "v1") {
    bad("bad header");
  }
  ++pos;
  storage::SnapshotChain snapshots;
  for (std::size_t i = 0; i < n_blobs; ++i) {
    const auto newline = blob.find('\n', pos);
    if (newline == std::string::npos) bad("truncated blob header");
    std::istringstream line(blob.substr(pos, newline - pos));
    std::string keyword;
    std::size_t bytes = 0;
    if (!(line >> keyword >> bytes) || keyword != "blob") bad("bad blob header");
    pos = newline + 1;
    if (blob.size() - pos < bytes) bad("truncated blob body");
    snapshots.push(blob.substr(pos, bytes));
    pos += bytes;
  }
  if (blob.size() - pos != wal_bytes) bad("wal length mismatch");
  snapshots_ = std::move(snapshots);
  wal_ = blob.substr(pos);
  base_generation_ = base_generation;
  base_log_size_ = base_log_size;
  op_index_ = op_index;
  batch_open_ = false;
  batch_.clear();
  group_open_ = false;
  group_.clear();
}

}  // namespace selfheal::engine
