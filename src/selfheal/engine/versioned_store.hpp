// Versioned data-object store.
//
// The paper assumes undo(t) "can be implemented by reading the last
// version of the data objects before the attack from the log of the
// workflow management system" (Section III.A). This store keeps the full
// version history per object: writes append versions tagged with the
// writer's commit sequence number, and undo restores the value that was
// current just before a given sequence number.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <vector>

#include "selfheal/engine/value.hpp"
#include "selfheal/wfspec/object_catalog.hpp"

namespace selfheal::engine {

using SeqNo = std::int64_t;
using InstanceId = std::int32_t;
inline constexpr InstanceId kInvalidInstance = -1;
/// Writer id of initial (version 0) values.
inline constexpr InstanceId kInitialWriter = -2;

struct Version {
  Value value = 0;
  SeqNo seq = 0;                          // commit sequence of the write
  InstanceId writer = kInitialWriter;    // log entry that wrote it
};

class VersionedStore {
 public:
  /// Objects are initialised lazily with initial_value(o) at seq 0, so
  /// stores over the same catalog start identical.
  VersionedStore() = default;

  /// Current value of an object.
  [[nodiscard]] Value read(wfspec::ObjectId object) const;

  /// Current (latest) version record.
  [[nodiscard]] const Version& latest(wfspec::ObjectId object) const;

  /// Appends a new version. `seq` must be strictly greater than the
  /// object's current version seq (commits are ordered).
  void write(wfspec::ObjectId object, Value value, SeqNo seq, InstanceId writer);

  /// Writers to skip while resolving version_before: used by undo to
  /// ignore versions written by instances that are themselves undone
  /// (Theorem 3 rule 5's reverse-output-order intent, independent of the
  /// order undo actions actually commit in).
  using WriterFilter = std::function<bool(InstanceId)>;

  /// The version that was current just before commit `seq` (i.e. the
  /// latest version with version.seq < seq), skipping versions whose
  /// writer `skip` accepts. This is what undo restores.
  [[nodiscard]] const Version& version_before(wfspec::ObjectId object, SeqNo seq,
                                              const WriterFilter& skip = nullptr) const;

  /// Undo helper: appends a new version (at `new_seq`, by `restorer`)
  /// whose value is the object's value just before `restore_point`.
  /// Returns the restored value.
  Value restore_before(wfspec::ObjectId object, SeqNo restore_point, SeqNo new_seq,
                       InstanceId restorer, const WriterFilter& skip = nullptr);

  /// Full history, oldest first (index 0 is the initial version).
  [[nodiscard]] const std::vector<Version>& history(wfspec::ObjectId object) const;

  /// Number of objects ever touched (read or written).
  [[nodiscard]] std::size_t object_count() const noexcept { return histories_.size(); }

  /// Current values of all touched objects, for whole-store comparisons.
  [[nodiscard]] std::vector<Value> snapshot() const;

  // --- Concurrent access (parallel recovery executor) ---

  /// Materialises every history in [0, object_count) and sizes the
  /// striped per-object lock table. The lazy ensure() mutates state on
  /// const reads, so concurrent readers MUST NOT be the first to touch
  /// an object: call this (single-threaded) before any parallel phase,
  /// and again after serial commits extend the object range.
  void prepare_concurrent(std::size_t object_count);

  /// write() under the object's stripe lock. Requires a preceding
  /// prepare_concurrent() covering `object`; per-object version order
  /// (strictly increasing seq) remains the caller's responsibility.
  void write_guarded(wfspec::ObjectId object, Value value, SeqNo seq,
                     InstanceId writer);

 private:
  void ensure(wfspec::ObjectId object) const;

  // Lazily grown; mutable so reads of never-written objects can
  // materialise version 0.
  mutable std::vector<std::vector<Version>> histories_;
  /// Striped per-object locks; allocated by prepare_concurrent (a
  /// unique_ptr keeps the store movable -- mutexes are not).
  static constexpr std::size_t kLockStripes = 64;
  std::unique_ptr<std::mutex[]> stripes_;
};

}  // namespace selfheal::engine
