#include "selfheal/engine/system_log.hpp"

#include <algorithm>
#include <map>
#include <sstream>
#include <stdexcept>

namespace selfheal::engine {

const char* to_string(ActionKind kind) {
  switch (kind) {
    case ActionKind::kNormal: return "normal";
    case ActionKind::kMalicious: return "malicious";
    case ActionKind::kUndo: return "undo";
    case ActionKind::kRedo: return "redo";
    case ActionKind::kFresh: return "fresh";
    case ActionKind::kRepair: return "repair";
  }
  return "?";
}

InstanceId SystemLog::append(TaskInstance entry) {
  entry.id = static_cast<InstanceId>(entries_.size());
  entry.seq = static_cast<SeqNo>(entries_.size()) + 1;  // seq 0 = initial store
  // Fresh slots are handed out from a globally monotone counter: work
  // committed after a recovery round sorts after the slots that round
  // stamped (which may be far above the raw commit sequence).
  if (entry.logical_slot == 0) entry.logical_slot = next_slot_;
  next_slot_ = std::max(next_slot_, entry.logical_slot + 1);
  if (entry.is_recovery()) ++recovery_entries_;
  entries_.push_back(std::move(entry));
  return entries_.back().id;
}

void SystemLog::restore_entry(TaskInstance entry) {
  if (entry.id != static_cast<InstanceId>(entries_.size()) ||
      entry.seq != static_cast<SeqNo>(entries_.size()) + 1) {
    throw std::invalid_argument("SystemLog::restore_entry: out-of-order entry");
  }
  next_slot_ = std::max(next_slot_, entry.logical_slot + 1);
  if (entry.is_recovery()) ++recovery_entries_;
  entries_.push_back(std::move(entry));
}

const TaskInstance& SystemLog::entry(InstanceId id) const {
  if (id < 0 || static_cast<std::size_t>(id) >= entries_.size()) {
    throw std::out_of_range("SystemLog: invalid instance id " + std::to_string(id));
  }
  return entries_[static_cast<std::size_t>(id)];
}

std::vector<InstanceId> SystemLog::trace(RunId run) const {
  std::vector<InstanceId> result;
  for (const auto& e : entries_) {
    if (e.run == run && e.is_original()) result.push_back(e.id);
  }
  return result;
}

std::vector<InstanceId> SystemLog::trace_successors(InstanceId instance) const {
  const auto& base = entry(instance);
  std::vector<InstanceId> result;
  for (std::size_t i = static_cast<std::size_t>(instance) + 1; i < entries_.size();
       ++i) {
    const auto& e = entries_[i];
    if (e.run == base.run && e.is_original()) result.push_back(e.id);
  }
  return result;
}

std::optional<InstanceId> SystemLog::find_original(RunId run, wfspec::TaskId task,
                                                   int incarnation) const {
  for (const auto& e : entries_) {
    if (e.run == run && e.task == task && e.incarnation == incarnation &&
        e.is_original()) {
      return e.id;
    }
  }
  return std::nullopt;
}

std::vector<InstanceId> SystemLog::originals() const {
  std::vector<InstanceId> result;
  for (const auto& e : entries_) {
    if (e.is_original()) result.push_back(e.id);
  }
  return result;
}

namespace {
bool is_execution(ActionKind kind) {
  return kind == ActionKind::kNormal || kind == ActionKind::kMalicious ||
         kind == ActionKind::kRedo || kind == ActionKind::kFresh;
}
}  // namespace

std::optional<InstanceId> SystemLog::find_latest_execution(RunId run,
                                                           wfspec::TaskId task,
                                                           int incarnation) const {
  for (auto it = entries_.rbegin(); it != entries_.rend(); ++it) {
    if (it->run == run && it->task == task && it->incarnation == incarnation &&
        is_execution(it->kind)) {
      return it->id;
    }
  }
  return std::nullopt;
}

bool SystemLog::currently_undone(InstanceId execution) const {
  const auto& base = entry(execution);
  // The LATEST undo-or-execution entry for the triple decides its state.
  for (std::size_t i = entries_.size(); i-- > static_cast<std::size_t>(execution) + 1;) {
    const auto& e = entries_[i];
    if (e.run != base.run || e.task != base.task || e.incarnation != base.incarnation) {
      continue;
    }
    if (e.kind == ActionKind::kUndo) return true;
    if (is_execution(e.kind)) return false;  // a later execution supersedes
  }
  return false;
}

std::vector<InstanceId> SystemLog::effective() const {
  // Latest state per (run, task, incarnation), single backward sweep.
  struct Key {
    RunId run;
    wfspec::TaskId task;
    int incarnation;
    auto operator<=>(const Key&) const = default;
  };
  std::map<Key, InstanceId> latest;  // kInvalidInstance marks "undone"
  for (auto it = entries_.rbegin(); it != entries_.rend(); ++it) {
    const Key key{it->run, it->task, it->incarnation};
    if (latest.count(key)) continue;  // a later entry already decided it
    if (it->kind == ActionKind::kUndo) {
      latest[key] = kInvalidInstance;
    } else if (is_execution(it->kind)) {
      latest[key] = it->id;
    }
    // kRepair entries carry no (run, task) identity of interest.
  }
  std::vector<InstanceId> result;
  for (const auto& [key, id] : latest) {
    if (id != kInvalidInstance) result.push_back(id);
  }
  std::sort(result.begin(), result.end(), [this](InstanceId a, InstanceId b) {
    const auto& ea = entry(a);
    const auto& eb = entry(b);
    if (ea.logical_slot != eb.logical_slot) return ea.logical_slot < eb.logical_slot;
    return a < b;
  });
  return result;
}

std::string SystemLog::render(
    const std::vector<const wfspec::WorkflowSpec*>& spec_of_run) const {
  std::ostringstream out;
  for (const auto& e : entries_) {
    const auto* spec = e.run >= 0 && static_cast<std::size_t>(e.run) < spec_of_run.size()
                           ? spec_of_run[static_cast<std::size_t>(e.run)]
                           : nullptr;
    if (e.id > 0) out << " ";
    if (spec) {
      out << spec->task(e.task).name;
    } else {
      out << "task" << e.task;
    }
    if (e.incarnation > 1) out << "^" << e.incarnation;
    switch (e.kind) {
      case ActionKind::kNormal: break;
      case ActionKind::kMalicious: out << "[B]"; break;
      case ActionKind::kUndo: out << "[undo]"; break;
      case ActionKind::kRedo: out << "[redo]"; break;
      case ActionKind::kFresh: out << "[fresh]"; break;
      case ActionKind::kRepair: out << "[repair]"; break;
    }
  }
  return out.str();
}

}  // namespace selfheal::engine
