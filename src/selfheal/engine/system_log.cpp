#include "selfheal/engine/system_log.hpp"

#include <algorithm>
#include <sstream>
#include <stdexcept>

namespace selfheal::engine {

const char* to_string(ActionKind kind) {
  switch (kind) {
    case ActionKind::kNormal: return "normal";
    case ActionKind::kMalicious: return "malicious";
    case ActionKind::kUndo: return "undo";
    case ActionKind::kRedo: return "redo";
    case ActionKind::kFresh: return "fresh";
    case ActionKind::kRepair: return "repair";
  }
  return "?";
}

namespace {
bool is_execution(ActionKind kind) {
  return kind == ActionKind::kNormal || kind == ActionKind::kMalicious ||
         kind == ActionKind::kRedo || kind == ActionKind::kFresh;
}
}  // namespace

void SystemLog::index_entry(const TaskInstance& entry) {
  // Repairs carry no (run, task, incarnation) identity of interest.
  if (entry.kind == ActionKind::kRepair) return;
  auto& state = triple_index_[TripleKey{entry.run, entry.task, entry.incarnation}];
  if (is_execution(entry.kind)) {
    state.latest_execution = entry.id;
    state.latest_decisive = entry.id;
    state.decisive_is_undo = false;
  } else if (entry.kind == ActionKind::kUndo) {
    state.latest_decisive = entry.id;
    state.decisive_is_undo = true;
  }
}

const SystemLog::TripleState* SystemLog::triple_state(RunId run, wfspec::TaskId task,
                                                      int incarnation) const {
  const auto it = triple_index_.find(TripleKey{run, task, incarnation});
  return it == triple_index_.end() ? nullptr : &it->second;
}

InstanceId SystemLog::append(TaskInstance entry) {
  entry.id = static_cast<InstanceId>(entries_.size());
  entry.seq = static_cast<SeqNo>(entries_.size()) + 1;  // seq 0 = initial store
  // Fresh slots are handed out from a globally monotone counter: work
  // committed after a recovery round sorts after the slots that round
  // stamped (which may be far above the raw commit sequence).
  if (entry.logical_slot == 0) entry.logical_slot = next_slot_;
  next_slot_ = std::max(next_slot_, entry.logical_slot + 1);
  if (entry.is_recovery()) ++recovery_entries_;
  entries_.push_back(std::move(entry));
  index_entry(entries_.back());
  return entries_.back().id;
}

void SystemLog::restore_entry(TaskInstance entry) {
  if (entry.id != static_cast<InstanceId>(entries_.size()) ||
      entry.seq != static_cast<SeqNo>(entries_.size()) + 1) {
    throw std::invalid_argument("SystemLog::restore_entry: out-of-order entry");
  }
  next_slot_ = std::max(next_slot_, entry.logical_slot + 1);
  if (entry.is_recovery()) ++recovery_entries_;
  entries_.push_back(std::move(entry));
  index_entry(entries_.back());
}

const TaskInstance& SystemLog::entry(InstanceId id) const {
  if (id < 0 || static_cast<std::size_t>(id) >= entries_.size()) {
    throw std::out_of_range("SystemLog: invalid instance id " + std::to_string(id));
  }
  return entries_[static_cast<std::size_t>(id)];
}

std::vector<InstanceId> SystemLog::trace(RunId run) const {
  std::vector<InstanceId> result;
  for (const auto& e : entries_) {
    if (e.run == run && e.is_original()) result.push_back(e.id);
  }
  return result;
}

std::vector<InstanceId> SystemLog::trace_successors(InstanceId instance) const {
  const auto& base = entry(instance);
  std::vector<InstanceId> result;
  for (std::size_t i = static_cast<std::size_t>(instance) + 1; i < entries_.size();
       ++i) {
    const auto& e = entries_[i];
    if (e.run == base.run && e.is_original()) result.push_back(e.id);
  }
  return result;
}

std::optional<InstanceId> SystemLog::find_original(RunId run, wfspec::TaskId task,
                                                   int incarnation) const {
  for (const auto& e : entries_) {
    if (e.run == run && e.task == task && e.incarnation == incarnation &&
        e.is_original()) {
      return e.id;
    }
  }
  return std::nullopt;
}

std::vector<InstanceId> SystemLog::originals() const {
  std::vector<InstanceId> result;
  for (const auto& e : entries_) {
    if (e.is_original()) result.push_back(e.id);
  }
  return result;
}

std::optional<InstanceId> SystemLog::find_latest_execution(RunId run,
                                                           wfspec::TaskId task,
                                                           int incarnation) const {
  const auto* state = triple_state(run, task, incarnation);
  if (state == nullptr || state->latest_execution == kInvalidInstance) {
    return std::nullopt;
  }
  return state->latest_execution;
}

bool SystemLog::currently_undone(InstanceId execution) const {
  const auto& base = entry(execution);
  // The LATEST undo-or-execution entry for the triple decides its state.
  // Index invariant: latest_decisive >= any of the triple's entries, so
  // an undo AFTER `execution` means undone; a later execution (or the
  // entry itself being the decisive one) means not.
  const auto* state = triple_state(base.run, base.task, base.incarnation);
  return state != nullptr && state->decisive_is_undo &&
         state->latest_decisive > execution;
}

bool SystemLog::is_live_execution(InstanceId execution) const {
  const auto& base = entry(execution);
  if (!is_execution(base.kind)) return false;
  const auto* state = triple_state(base.run, base.task, base.incarnation);
  return state != nullptr && !state->decisive_is_undo &&
         state->latest_decisive == execution;
}

std::vector<InstanceId> SystemLog::effective() const {
  // One pass over the triple index (latest state per (run, task,
  // incarnation) is maintained on append); order restored by the final
  // (logical_slot, id) sort, so map iteration order does not leak.
  std::vector<InstanceId> result;
  result.reserve(triple_index_.size());
  for (const auto& [key, state] : triple_index_) {
    if (!state.decisive_is_undo && state.latest_decisive != kInvalidInstance) {
      result.push_back(state.latest_decisive);
    }
  }
  std::sort(result.begin(), result.end(), [this](InstanceId a, InstanceId b) {
    const auto& ea = entry(a);
    const auto& eb = entry(b);
    if (ea.logical_slot != eb.logical_slot) return ea.logical_slot < eb.logical_slot;
    return a < b;
  });
  return result;
}

std::string SystemLog::render(
    const std::vector<const wfspec::WorkflowSpec*>& spec_of_run) const {
  std::ostringstream out;
  for (const auto& e : entries_) {
    const auto* spec = e.run >= 0 && static_cast<std::size_t>(e.run) < spec_of_run.size()
                           ? spec_of_run[static_cast<std::size_t>(e.run)]
                           : nullptr;
    if (e.id > 0) out << " ";
    if (spec) {
      out << spec->task(e.task).name;
    } else {
      out << "task" << e.task;
    }
    if (e.incarnation > 1) out << "^" << e.incarnation;
    switch (e.kind) {
      case ActionKind::kNormal: break;
      case ActionKind::kMalicious: out << "[B]"; break;
      case ActionKind::kUndo: out << "[undo]"; break;
      case ActionKind::kRedo: out << "[redo]"; break;
      case ActionKind::kFresh: out << "[fresh]"; break;
      case ActionKind::kRepair: out << "[repair]"; break;
    }
  }
  return out.str();
}

}  // namespace selfheal::engine
