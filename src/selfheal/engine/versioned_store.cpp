#include "selfheal/engine/versioned_store.hpp"

#include <stdexcept>
#include <string>

namespace selfheal::engine {

void VersionedStore::ensure(wfspec::ObjectId object) const {
  if (object < 0) throw std::out_of_range("VersionedStore: negative object id");
  const auto idx = static_cast<std::size_t>(object);
  if (idx >= histories_.size()) histories_.resize(idx + 1);
  if (histories_[idx].empty()) {
    histories_[idx].push_back(Version{initial_value(object), 0, kInitialWriter});
  }
}

Value VersionedStore::read(wfspec::ObjectId object) const {
  return latest(object).value;
}

const Version& VersionedStore::latest(wfspec::ObjectId object) const {
  ensure(object);
  return histories_[static_cast<std::size_t>(object)].back();
}

void VersionedStore::write(wfspec::ObjectId object, Value value, SeqNo seq,
                           InstanceId writer) {
  ensure(object);
  auto& history = histories_[static_cast<std::size_t>(object)];
  if (seq <= history.back().seq) {
    throw std::logic_error("VersionedStore: write at seq " + std::to_string(seq) +
                           " not after current seq " +
                           std::to_string(history.back().seq));
  }
  history.push_back(Version{value, seq, writer});
}

const Version& VersionedStore::version_before(wfspec::ObjectId object, SeqNo seq,
                                              const WriterFilter& skip) const {
  ensure(object);
  const auto& history = histories_[static_cast<std::size_t>(object)];
  // Histories are short (tens of versions); linear scan from the back.
  for (auto it = history.rbegin(); it != history.rend(); ++it) {
    if (it->seq >= seq) continue;
    if (skip && it->writer != kInitialWriter && skip(it->writer)) continue;
    return *it;
  }
  throw std::logic_error("VersionedStore: no version before seq " +
                         std::to_string(seq));
}

Value VersionedStore::restore_before(wfspec::ObjectId object, SeqNo restore_point,
                                     SeqNo new_seq, InstanceId restorer,
                                     const WriterFilter& skip) {
  const Value value = version_before(object, restore_point, skip).value;
  write(object, value, new_seq, restorer);
  return value;
}

const std::vector<Version>& VersionedStore::history(wfspec::ObjectId object) const {
  ensure(object);
  return histories_[static_cast<std::size_t>(object)];
}

void VersionedStore::prepare_concurrent(std::size_t object_count) {
  for (std::size_t o = 0; o < object_count; ++o) {
    ensure(static_cast<wfspec::ObjectId>(o));
  }
  if (stripes_ == nullptr) stripes_ = std::make_unique<std::mutex[]>(kLockStripes);
}

void VersionedStore::write_guarded(wfspec::ObjectId object, Value value,
                                   SeqNo seq, InstanceId writer) {
  if (stripes_ == nullptr) {
    throw std::logic_error("VersionedStore: write_guarded before prepare_concurrent");
  }
  std::lock_guard<std::mutex> lock(
      stripes_[static_cast<std::size_t>(object) % kLockStripes]);
  write(object, value, seq, writer);
}

std::vector<Value> VersionedStore::snapshot() const {
  std::vector<Value> values;
  values.reserve(histories_.size());
  for (std::size_t o = 0; o < histories_.size(); ++o) {
    ensure(static_cast<wfspec::ObjectId>(o));
    values.push_back(histories_[o].back().value);
  }
  return values;
}

}  // namespace selfheal::engine
