#include "selfheal/engine/engine.hpp"

#include <algorithm>
#include <stdexcept>
#include <string>

#include "selfheal/obs/metrics.hpp"
#include "selfheal/obs/trace.hpp"

namespace selfheal::engine {

namespace {

/// Instrument references resolved once: the per-commit fast path is one
/// relaxed atomic increment per counter touched.
struct EngineMetrics {
  obs::Counter& tasks_executed = obs::metrics().counter("engine.tasks_executed");
  obs::Counter& tasks_malicious = obs::metrics().counter("engine.tasks_malicious");
  obs::Counter& redo_actions = obs::metrics().counter("engine.redo_actions");
  obs::Counter& fresh_actions = obs::metrics().counter("engine.fresh_actions");
  obs::Counter& undo_actions = obs::metrics().counter("engine.undo_actions");
  obs::Counter& repair_actions = obs::metrics().counter("engine.repair_actions");
  obs::Counter& runs_started = obs::metrics().counter("engine.runs_started");
  obs::Counter& task_retries = obs::metrics().counter("engine.task_retries");
  obs::Counter& transient_faults = obs::metrics().counter("engine.transient_faults");
  obs::Counter& permanent_faults = obs::metrics().counter("engine.permanent_faults");
  obs::Counter& runs_aborted = obs::metrics().counter("engine.runs_aborted");
  obs::Gauge& backoff_units = obs::metrics().gauge("engine.backoff_units");
};

EngineMetrics& engine_metrics() {
  static EngineMetrics m;
  return m;
}

const char* span_name(ActionKind kind) {
  switch (kind) {
    case ActionKind::kNormal: return "engine.task";
    case ActionKind::kMalicious: return "engine.task.malicious";
    case ActionKind::kRedo: return "engine.task.redo";
    case ActionKind::kFresh: return "engine.task.fresh";
    case ActionKind::kUndo: return "engine.undo";
    case ActionKind::kRepair: return "engine.repair";
  }
  return "engine.task";
}

}  // namespace

Engine::Engine(EngineConfig config) : config_(config), rng_(config.seed) {}

void Engine::set_schedule(std::vector<RunId> schedule) {
  schedule_ = std::move(schedule);
  schedule_cursor_ = 0;
}

RunId Engine::start_run(const wfspec::WorkflowSpec& spec) {
  if (!spec.validated()) {
    throw std::logic_error("Engine::start_run: spec '" + spec.name() +
                           "' not validated");
  }
  Run run;
  run.spec = &spec;
  run.pc = spec.start();
  run.active = true;
  runs_.push_back(std::move(run));
  engine_metrics().runs_started.inc();
  return static_cast<RunId>(runs_.size() - 1);
}

void Engine::inject_malicious(RunId run, wfspec::TaskId task, int incarnation) {
  auto& r = runs_.at(static_cast<std::size_t>(run));
  const int done = r.visits.count(task) ? r.visits.at(task) : 0;
  if (done >= incarnation) {
    throw std::logic_error("inject_malicious: instance already executed");
  }
  r.malicious.emplace(task, incarnation);
}

bool Engine::step() {
  // Collect active runs.
  std::vector<std::size_t> active;
  for (std::size_t i = 0; i < runs_.size(); ++i) {
    if (runs_[i].active) active.push_back(i);
  }
  if (active.empty()) return false;

  std::size_t pick;
  bool picked = false;
  if (config_.interleave == Interleave::kExplicit) {
    // Consume schedule slots, skipping completed runs.
    while (schedule_cursor_ < schedule_.size()) {
      const auto candidate = schedule_[schedule_cursor_++];
      if (candidate >= 0 && static_cast<std::size_t>(candidate) < runs_.size() &&
          runs_[static_cast<std::size_t>(candidate)].active) {
        pick = static_cast<std::size_t>(candidate);
        picked = true;
        break;
      }
    }
  }
  if (picked) {
    // fall through to execution below
  } else if (config_.interleave == Interleave::kRandom) {
    pick = active[rng_.index_into(active)];
  } else {
    // Round-robin: next active run at or after the cursor.
    pick = active[0];
    for (const std::size_t i : active) {
      if (i >= rr_cursor_) {
        pick = i;
        break;
      }
    }
    rr_cursor_ = pick + 1;
    if (rr_cursor_ >= runs_.size()) rr_cursor_ = 0;
  }

  advance(pick);
  return true;
}

bool Engine::step_run(RunId run) {
  if (run < 0 || static_cast<std::size_t>(run) >= runs_.size() ||
      !runs_[static_cast<std::size_t>(run)].active) {
    return false;
  }
  advance(static_cast<std::size_t>(run));
  return true;
}

void Engine::set_fault_injector(FaultInjector injector) {
  fault_injector_ = std::move(injector);
}

void Engine::abort_run(RunId run_id) {
  Run& run = runs_.at(static_cast<std::size_t>(run_id));
  run.active = false;
  run.aborted = true;
  if (durability_observer_) {
    durability_observer_->on_control_change(*this, run_id);
  }
}

bool Engine::run_aborted(RunId run) const {
  return runs_.at(static_cast<std::size_t>(run)).aborted;
}

void Engine::advance(std::size_t pick) {
  Run& run = runs_[pick];
  const wfspec::TaskId task = run.pc;
  const int incarnation = run.visits[task] + 1;

  if (fault_injector_) {
    auto& em = engine_metrics();
    double backoff = config_.retry.backoff_base;
    for (int attempt = 1;; ++attempt) {
      const TaskFault fault =
          fault_injector_(static_cast<RunId>(pick), task, incarnation, attempt);
      if (fault == TaskFault::kNone) break;
      if (fault == TaskFault::kTransient) em.transient_faults.inc();
      if (fault == TaskFault::kPermanent ||
          attempt > config_.retry.max_retries) {
        if (fault == TaskFault::kPermanent) em.permanent_faults.inc();
        em.runs_aborted.inc();
        abort_run(static_cast<RunId>(pick));
        return;  // graceful degradation: nothing commits for this run
      }
      em.task_retries.inc();
      em.backoff_units.add(backoff);
      backoff *= config_.retry.backoff_multiplier;
    }
  }
  if (incarnation > config_.max_incarnations) {
    throw std::runtime_error("Engine: task " + run.spec->task(task).name +
                             " exceeded max incarnations (cyclic workflow?)");
  }
  run.visits[task] = incarnation;

  const bool malicious = run.malicious.count({task, incarnation}) > 0;
  const auto id = execute(static_cast<RunId>(pick), task, incarnation,
                          malicious ? ActionKind::kMalicious : ActionKind::kNormal,
                          kInvalidInstance, /*logical_slot=*/0);

  // Advance the program counter along the (possibly chosen) successor.
  const auto& committed = log_.entry(id);
  if (committed.chosen_successor) {
    run.pc = *committed.chosen_successor;
  } else if (run.spec->graph().out_degree(task) == 1) {
    run.pc = run.spec->graph().successors(task)[0];
  } else {
    run.active = false;  // end node reached
  }
  // Fire after the pc/visits update: the observer's view of run control
  // must already include this commit's consequences.
  if (durability_observer_) durability_observer_->on_commit(*this, committed);
}

void Engine::run_all() {
  while (step()) {
  }
}

bool Engine::run_active(RunId run) const {
  return runs_.at(static_cast<std::size_t>(run)).active;
}

std::size_t Engine::active_runs() const {
  std::size_t n = 0;
  for (const auto& r : runs_) {
    if (r.active) ++n;
  }
  return n;
}

const wfspec::WorkflowSpec& Engine::spec_of(RunId run) const {
  return *runs_.at(static_cast<std::size_t>(run)).spec;
}

std::vector<const wfspec::WorkflowSpec*> Engine::specs_by_run() const {
  std::vector<const wfspec::WorkflowSpec*> result;
  result.reserve(runs_.size());
  for (const auto& r : runs_) result.push_back(r.spec);
  return result;
}

TaskInstance Engine::build_instance(RunId run_id, wfspec::TaskId task,
                                    int incarnation, ActionKind kind,
                                    InstanceId target, SeqNo logical_slot,
                                    const std::vector<Value>* read_override) const {
  const Run& run = runs_.at(static_cast<std::size_t>(run_id));
  const auto& spec = *run.spec;
  const auto& task_spec = spec.task(task);
  const bool malicious = kind == ActionKind::kMalicious;

  TaskInstance entry;
  entry.run = run_id;
  entry.task = task;
  entry.incarnation = incarnation;
  entry.kind = kind;
  entry.target = target;
  entry.logical_slot = logical_slot;

  // Read phase.
  entry.read_objects = task_spec.reads;
  if (read_override != nullptr) {
    if (read_override->size() != task_spec.reads.size()) {
      throw std::invalid_argument(
          "Engine::build_instance: read override size mismatch");
    }
    entry.read_values = *read_override;
  } else {
    entry.read_values.reserve(task_spec.reads.size());
    for (const auto object : task_spec.reads) {
      entry.read_values.push_back(store_.read(object));
    }
  }

  // Compute phase.
  const auto seed = task_seed(spec.name(), task_spec.name);
  entry.written_objects = task_spec.writes;
  entry.written_values.reserve(task_spec.writes.size());
  for (const auto object : task_spec.writes) {
    Value out = compute_output(seed, object, incarnation, entry.read_values);
    if (malicious) out = corrupt(out);
    entry.written_values.push_back(out);
  }

  // Branch decision from the selector object's (possibly corrupted) value.
  if (spec.is_branch(task)) {
    const auto selector = *task_spec.selector;
    Value sel_value = 0;
    for (std::size_t i = 0; i < entry.read_objects.size(); ++i) {
      if (entry.read_objects[i] == selector) sel_value = entry.read_values[i];
    }
    if (malicious) sel_value = corrupt(sel_value);
    const auto& succ = spec.graph().successors(task);
    entry.chosen_successor = succ[choose_branch(sel_value, succ.size())];
  }

  return entry;
}

InstanceId Engine::commit_instance(TaskInstance entry) {
  // Commit phase: write the store, then append to the log.
  const SeqNo seq = next_seq();
  const auto id = static_cast<InstanceId>(log_.size());
  for (std::size_t i = 0; i < entry.written_objects.size(); ++i) {
    store_.write(entry.written_objects[i], entry.written_values[i], seq, id);
  }
  return log_.append(std::move(entry));
}

InstanceId Engine::execute(RunId run_id, wfspec::TaskId task, int incarnation,
                           ActionKind kind, InstanceId target, SeqNo logical_slot,
                           const std::vector<Value>* read_override) {
  const bool malicious = kind == ActionKind::kMalicious;
  auto& em = engine_metrics();
  em.tasks_executed.inc();
  if (malicious) em.tasks_malicious.inc();
  if (kind == ActionKind::kRedo) em.redo_actions.inc();
  if (kind == ActionKind::kFresh) em.fresh_actions.inc();
  obs::Span span(span_name(kind), "engine");
  if (span.active()) {
    const auto& spec = *runs_.at(static_cast<std::size_t>(run_id)).spec;
    span.set_detail(spec.name() + ":" + spec.task(task).name);
  }
  return commit_instance(build_instance(run_id, task, incarnation, kind, target,
                                        logical_slot, read_override));
}

TaskInstance Engine::prepare_action(RunId run, wfspec::TaskId task,
                                    int incarnation, ActionKind kind,
                                    InstanceId target, SeqNo logical_slot,
                                    const std::vector<Value>& read_values) const {
  return build_instance(run, task, incarnation, kind, target, logical_slot,
                        &read_values);
}

InstanceId Engine::commit_action(TaskInstance entry) {
  auto& em = engine_metrics();
  em.tasks_executed.inc();
  if (entry.kind == ActionKind::kRedo) em.redo_actions.inc();
  if (entry.kind == ActionKind::kFresh) em.fresh_actions.inc();
  obs::Span span(span_name(entry.kind), "engine");
  if (span.active()) {
    const auto& spec = *runs_.at(static_cast<std::size_t>(entry.run)).spec;
    span.set_detail(spec.name() + ":" + spec.task(entry.task).name);
  }
  const auto id = commit_instance(std::move(entry));
  if (durability_observer_) durability_observer_->on_commit(*this, log_.entry(id));
  return id;
}

std::vector<Value> Engine::peek_undo_values(
    InstanceId target, const VersionedStore::WriterFilter& skip_writer) const {
  const auto& victim = log_.entry(target);
  if (victim.kind == ActionKind::kUndo || victim.kind == ActionKind::kRepair) {
    throw std::logic_error("apply_undo: target is not an execution entry");
  }
  std::vector<Value> restored;
  restored.reserve(victim.written_objects.size());
  for (const auto object : victim.written_objects) {
    restored.push_back(store_.version_before(object, victim.seq, skip_writer).value);
  }
  return restored;
}

InstanceId Engine::commit_undo_prepared(InstanceId target,
                                        std::vector<Value> restored) {
  const auto& victim = log_.entry(target);
  if (victim.kind == ActionKind::kUndo || victim.kind == ActionKind::kRepair) {
    throw std::logic_error("apply_undo: target is not an execution entry");
  }
  if (restored.size() != victim.written_objects.size()) {
    throw std::invalid_argument(
        "Engine::commit_undo_prepared: restored value count mismatch");
  }
  engine_metrics().undo_actions.inc();
  obs::Span span("engine.undo", "engine");

  TaskInstance entry;
  entry.run = victim.run;
  entry.task = victim.task;
  entry.incarnation = victim.incarnation;
  entry.kind = ActionKind::kUndo;
  entry.target = target;
  entry.logical_slot = victim.logical_slot;
  entry.written_objects = victim.written_objects;
  entry.written_values = std::move(restored);
  const auto undo_id = log_.append(std::move(entry));
  if (durability_observer_) {
    durability_observer_->on_commit(*this, log_.entry(undo_id));
  }
  return undo_id;
}

void Engine::write_restored_version(wfspec::ObjectId object, Value value,
                                    SeqNo seq, InstanceId writer) {
  store_.write_guarded(object, value, seq, writer);
}

void Engine::prepare_store_concurrency(std::size_t min_objects) {
  store_.prepare_concurrent(std::max(min_objects, store_.object_count()));
}

void Engine::begin_durability_group() {
  if (durability_observer_) durability_observer_->on_group_begin();
}

void Engine::end_durability_group() {
  if (durability_observer_) durability_observer_->on_group_end();
}

InstanceId Engine::apply_undo(InstanceId target,
                              const VersionedStore::WriterFilter& skip_writer) {
  const auto& victim = log_.entry(target);
  if (victim.kind == ActionKind::kUndo || victim.kind == ActionKind::kRepair) {
    throw std::logic_error("apply_undo: target is not an execution entry");
  }

  engine_metrics().undo_actions.inc();
  obs::Span span("engine.undo", "engine");

  TaskInstance entry;
  entry.run = victim.run;
  entry.task = victim.task;
  entry.incarnation = victim.incarnation;
  entry.kind = ActionKind::kUndo;
  entry.target = target;
  entry.logical_slot = victim.logical_slot;

  const SeqNo seq = next_seq();
  const auto id = static_cast<InstanceId>(log_.size());
  for (const auto object : victim.written_objects) {
    entry.written_objects.push_back(object);
    entry.written_values.push_back(
        store_.restore_before(object, victim.seq, seq, id, skip_writer));
  }
  const auto undo_id = log_.append(std::move(entry));
  if (durability_observer_) {
    durability_observer_->on_commit(*this, log_.entry(undo_id));
  }
  return undo_id;
}

InstanceId Engine::apply_redo(InstanceId target, SeqNo logical_slot,
                              const std::vector<Value>* read_values) {
  const auto& victim = log_.entry(target);
  const auto id = execute(victim.run, victim.task, victim.incarnation,
                          ActionKind::kRedo, target,
                          logical_slot > 0 ? logical_slot : victim.logical_slot,
                          read_values);
  if (durability_observer_) durability_observer_->on_commit(*this, log_.entry(id));
  return id;
}

InstanceId Engine::apply_fresh(RunId run, wfspec::TaskId task, int incarnation,
                               SeqNo logical_slot,
                               const std::vector<Value>* read_values) {
  const auto id = execute(run, task, incarnation, ActionKind::kFresh,
                          kInvalidInstance, logical_slot, read_values);
  if (durability_observer_) durability_observer_->on_commit(*this, log_.entry(id));
  return id;
}

InstanceId Engine::apply_repair(
    const std::vector<std::pair<wfspec::ObjectId, Value>>& fixes) {
  engine_metrics().repair_actions.inc();
  obs::Span span("engine.repair", "engine");
  TaskInstance entry;
  entry.kind = ActionKind::kRepair;
  const SeqNo seq = next_seq();
  const auto id = static_cast<InstanceId>(log_.size());
  for (const auto& [object, value] : fixes) {
    entry.written_objects.push_back(object);
    entry.written_values.push_back(value);
    store_.write(object, value, seq, id);
  }
  const auto repair_id = log_.append(std::move(entry));
  if (durability_observer_) {
    durability_observer_->on_commit(*this, log_.entry(repair_id));
  }
  return repair_id;
}

Engine::RunSnapshot Engine::run_snapshot(RunId run_id) const {
  const Run& run = runs_.at(static_cast<std::size_t>(run_id));
  RunSnapshot snapshot;
  snapshot.pc = run.active ? run.pc : wfspec::kInvalidTask;
  snapshot.active = run.active;
  snapshot.aborted = run.aborted;
  snapshot.visits = run.visits;
  for (const auto& [task, inc] : run.malicious) {
    // Only injections that have not fired yet are still pending; fired
    // ones live on in the log as kMalicious entries.
    const auto it = run.visits.find(task);
    const int done = it == run.visits.end() ? 0 : it->second;
    if (inc > done) snapshot.pending_malicious.emplace_back(task, inc);
  }
  return snapshot;
}

void Engine::import_entry(TaskInstance entry) {
  for (std::size_t i = 0; i < entry.written_objects.size(); ++i) {
    store_.write(entry.written_objects[i], entry.written_values[i], entry.seq,
                 entry.id);
  }
  log_.restore_entry(std::move(entry));
}

std::optional<wfspec::TaskId> Engine::peek_next_task(RunId run_id) const {
  const Run& run = runs_.at(static_cast<std::size_t>(run_id));
  if (!run.active) return std::nullopt;
  return run.pc;
}

void Engine::resume_run(RunId run_id, wfspec::TaskId pc,
                        const std::map<wfspec::TaskId, int>& visits) {
  Run& run = runs_.at(static_cast<std::size_t>(run_id));
  run.visits = visits;
  if (pc == wfspec::kInvalidTask) {
    run.active = false;
  } else {
    run.pc = pc;
    run.active = true;
  }
  if (durability_observer_) {
    durability_observer_->on_control_change(*this, run_id);
  }
}

std::optional<wfspec::TaskId> Engine::peek_choice(RunId run_id,
                                                  wfspec::TaskId task) const {
  const Run& run = runs_.at(static_cast<std::size_t>(run_id));
  const auto& spec = *run.spec;
  if (!spec.is_branch(task)) return std::nullopt;
  const auto selector = *spec.task(task).selector;
  const Value sel_value = store_.read(selector);
  const auto& succ = spec.graph().successors(task);
  return succ[choose_branch(sel_value, succ.size())];
}

}  // namespace selfheal::engine
