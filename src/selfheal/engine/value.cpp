#include "selfheal/engine/value.hpp"

namespace selfheal::engine {

namespace {
std::uint64_t hash_string(const std::string& s) {
  // FNV-1a, then strengthened with splitmix64.
  std::uint64_t h = 0xcbf29ce484222325ULL;
  for (const char c : s) {
    h ^= static_cast<unsigned char>(c);
    h *= 0x100000001b3ULL;
  }
  return util::splitmix64(h);
}
}  // namespace

Value initial_value(wfspec::ObjectId object) {
  return static_cast<Value>(
      util::mix64(0x1717c0de00000000ULL, static_cast<std::uint64_t>(object)));
}

std::uint64_t task_seed(const std::string& workflow_name, const std::string& task_name) {
  return util::mix64(hash_string(workflow_name), hash_string(task_name));
}

Value compute_output(std::uint64_t seed, wfspec::ObjectId object, int incarnation,
                     const std::vector<Value>& read_values) {
  std::uint64_t acc = util::mix64(seed, static_cast<std::uint64_t>(object));
  acc = util::mix64(acc, static_cast<std::uint64_t>(incarnation));
  for (const Value v : read_values) {
    acc = util::mix64(acc, static_cast<std::uint64_t>(v));
  }
  return static_cast<Value>(acc);
}

Value corrupt(Value v) {
  // XOR with a constant is an involution and has no fixed points.
  return v ^ static_cast<Value>(0xbadc0ffee0ddf00dULL);
}

std::size_t choose_branch(Value selector_value, std::size_t n_choices) {
  // Re-mix so adjacent selector values spread across branches.
  const auto h = util::splitmix64(static_cast<std::uint64_t>(selector_value));
  return static_cast<std::size_t>(h % n_choices);
}

}  // namespace selfheal::engine
