// The workflow execution engine.
//
// Executes any number of workflow runs (instances of WorkflowSpecs over
// a shared object catalog) with interleaved commits, producing the
// system log and the versioned store that the recovery subsystem
// operates on. Attack injection marks (run, task, incarnation) triples
// whose execution is corrupted, modelling the paper's malicious tasks.
//
// The engine also exposes the primitive recovery actions -- undo
// (version restore) and redo / fresh execution -- which the recovery
// scheduler composes according to Theorems 1-4. Each primitive commits
// to the same system log.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <optional>
#include <set>
#include <vector>

#include "selfheal/engine/system_log.hpp"
#include "selfheal/engine/value.hpp"
#include "selfheal/engine/versioned_store.hpp"
#include "selfheal/util/rng.hpp"
#include "selfheal/wfspec/workflow_spec.hpp"

namespace selfheal::engine {

/// How ready tasks from concurrent runs are interleaved in commit order.
enum class Interleave {
  kRoundRobin,  // deterministic rotation over active runs (default)
  kRandom,      // seeded random pick among active runs
  kExplicit,    // follow set_schedule(), then fall back to round-robin
};

/// How a fault injector (chaos harness, operational monitor) reports an
/// execution attempt's fate to the engine.
enum class TaskFault {
  kNone,       // the attempt succeeds
  kTransient,  // the attempt fails; retry per RetryPolicy
  kPermanent,  // the task cannot succeed; abort the run (degradation)
};

/// Retry/backoff policy for transient task execution failures. Backoff
/// is logical (accumulated into the `engine.backoff_units` gauge), not
/// wall-clock: simulations must stay deterministic and fast.
struct RetryPolicy {
  /// Retries after the first failed attempt; when exhausted the fault is
  /// escalated to permanent (the run aborts).
  int max_retries = 3;
  /// Backoff charged for the k-th retry: base * multiplier^(k-1).
  double backoff_base = 1.0;
  double backoff_multiplier = 2.0;
};

struct EngineConfig {
  Interleave interleave = Interleave::kRoundRobin;
  std::uint64_t seed = 0x5e1f4ea1dead5eedULL;  // for kRandom interleaving
  /// Safety bound on loop unrolling: max incarnations of one task per run.
  int max_incarnations = 64;
  RetryPolicy retry;
};

/// Consulted before each NORMAL execution attempt (recovery actions are
/// never failed: they re-commit already-validated work). Arguments:
/// (run, task, incarnation, attempt) with attempt starting at 1.
using FaultInjector =
    std::function<TaskFault(RunId, wfspec::TaskId, int, int)>;

class Engine;

/// Observer of durable-relevant engine mutations: every log commit and
/// every out-of-band run-control change. The durable session layer
/// (engine/durable_session.hpp) implements this to mirror engine state
/// into a write-ahead log between snapshots; anything the observer does
/// not see cannot survive a crash.
class DurabilityObserver {
 public:
  virtual ~DurabilityObserver() = default;
  /// Fired after `entry` committed to the log (any ActionKind). For
  /// original executions the run's control state (pc, visits, active)
  /// has already advanced past the commit when this fires.
  virtual void on_commit(const Engine& engine, const TaskInstance& entry) = 0;
  /// Fired after a run's control state changed outside a normal commit
  /// (resume_run, abort_run).
  virtual void on_control_change(const Engine& engine, RunId run) = 0;
  /// Brackets a durability group (Engine::begin/end_durability_group):
  /// commits observed between the two calls may be coalesced into one
  /// media append, provided the logical record stream is unchanged.
  virtual void on_group_begin() {}
  virtual void on_group_end() {}
};

class Engine {
 public:
  explicit Engine(EngineConfig config = {});

  /// Registers a run of `spec` (which must be validated and outlive the
  /// engine). The run becomes active at its start node.
  RunId start_run(const wfspec::WorkflowSpec& spec);

  /// Marks the given (task, incarnation) of a run for malicious
  /// execution: its outputs (and branch choice) will be corrupted.
  /// Must be called before the task executes.
  void inject_malicious(RunId run, wfspec::TaskId task, int incarnation = 1);

  /// Installs (or clears, with nullptr) the durability observer. The
  /// pointer is borrowed: the observer must outlive the engine or be
  /// cleared first. Fires on every log commit and every out-of-band run
  /// control change; import_entry (restore) is deliberately silent.
  void set_durability_observer(DurabilityObserver* observer) noexcept {
    durability_observer_ = observer;
  }

  /// Installs (or clears, with nullptr) the task fault injector. Each
  /// normal execution attempt consults it; kTransient faults retry per
  /// EngineConfig::retry, kPermanent faults (and exhausted retries)
  /// abort the run -- graceful degradation: the failed branch of work
  /// stops, every other run keeps executing.
  void set_fault_injector(FaultInjector injector);

  /// Aborts a run: it stops executing (nothing further commits) but its
  /// committed history stays in the log and store. Recovery replays an
  /// aborted run only over its recorded prefix; the correctness oracle
  /// truncates its benign replay at the same point.
  void abort_run(RunId run);
  [[nodiscard]] bool run_aborted(RunId run) const;

  /// For Interleave::kExplicit: the run to advance at each commit slot.
  /// Slots whose run is complete are skipped; once the schedule is
  /// exhausted, execution falls back to round-robin. Used by the
  /// correctness oracle to replay the commit slots of an attacked
  /// execution benignly.
  void set_schedule(std::vector<RunId> schedule);

  /// Executes the next ready task of some active run. Returns false when
  /// no run is active.
  bool step();

  /// Executes the next ready task of a SPECIFIC run; false if that run
  /// is not active. Used by drivers that impose their own interleaving
  /// (the correctness oracle replays the recovery schedule this way).
  bool step_run(RunId run);

  /// Runs every active run to completion.
  void run_all();

  [[nodiscard]] bool run_active(RunId run) const;
  [[nodiscard]] std::size_t active_runs() const;
  [[nodiscard]] std::size_t run_count() const noexcept { return runs_.size(); }
  [[nodiscard]] const wfspec::WorkflowSpec& spec_of(RunId run) const;
  [[nodiscard]] std::vector<const wfspec::WorkflowSpec*> specs_by_run() const;

  [[nodiscard]] const SystemLog& log() const noexcept { return log_; }
  [[nodiscard]] const VersionedStore& store() const noexcept { return store_; }

  // --- Recovery primitives (used by recovery::RecoveryScheduler) ---

  /// Undoes `target` (an execution entry): restores each object it wrote
  /// to the version current just before its commit, skipping versions
  /// written by instances `skip_writer` accepts (already-undone writers,
  /// realising Theorem 3 rule 5's intent independently of undo commit
  /// order). Appends a kUndo entry and returns its id.
  InstanceId apply_undo(InstanceId target,
                        const VersionedStore::WriterFilter& skip_writer = nullptr);

  /// Re-executes the task of `target`, appending a kRedo entry (with
  /// target linkage). The redo occupies `logical_slot` if given (>0),
  /// else inherits the target's slot. When `read_values` is non-null it
  /// supplies the values the redo reads (in read-set order) -- the
  /// recovery scheduler passes its clean-timeline values, which is how
  /// this implementation realises Theorem 3's guarantee that a redo
  /// never reads data "from the future" of the repaired schedule.
  /// Without it the redo reads the current store. Returns the redo id;
  /// the entry's chosen_successor reflects the new branch decision.
  InstanceId apply_redo(InstanceId target, SeqNo logical_slot = 0,
                        const std::vector<Value>* read_values = nullptr);

  /// Executes (run, task, incarnation) for the first time during
  /// recovery (the task joined the execution path after a branch redo).
  /// `logical_slot` is the schedule slot the execution occupies;
  /// `read_values` as in apply_redo.
  InstanceId apply_fresh(RunId run, wfspec::TaskId task, int incarnation,
                         SeqNo logical_slot,
                         const std::vector<Value>* read_values = nullptr);

  /// Appends one kRepair entry writing the given (object, value) pairs:
  /// the scheduler's final masked-write reconciliation.
  InstanceId apply_repair(
      const std::vector<std::pair<wfspec::ObjectId, Value>>& fixes);

  // --- Parallel recovery support (recovery/scheduler_parallel.cpp) ---
  //
  // The parallel executor separates an action's pure read/compute phase
  // (safe to run concurrently) from its commit (serialised in
  // deterministic slot order), so the resulting log, store, and metrics
  // are byte-identical to the serial apply_* path.

  /// The instance apply_redo/apply_fresh would commit, WITHOUT
  /// committing it or touching metrics. Read values must be supplied
  /// (the parallel executor always replays against its clean timeline),
  /// so this never reads the store and is safe to call concurrently.
  [[nodiscard]] TaskInstance prepare_action(
      RunId run, wfspec::TaskId task, int incarnation, ActionKind kind,
      InstanceId target, SeqNo logical_slot,
      const std::vector<Value>& read_values) const;

  /// Commits a prepared action: assigns seq/id, writes the store,
  /// appends the log, and fires metrics + the durability observer --
  /// exactly what apply_redo/apply_fresh do around their commit.
  InstanceId commit_action(TaskInstance entry);

  /// The values apply_undo(target, skip_writer) would restore, in
  /// victim.written_objects order, without committing anything. Safe to
  /// call concurrently once the relevant histories exist (the victim
  /// wrote them, so they do).
  [[nodiscard]] std::vector<Value> peek_undo_values(
      InstanceId target,
      const VersionedStore::WriterFilter& skip_writer = nullptr) const;

  /// Appends the kUndo entry for `target` with pre-computed restored
  /// values (metrics + observer as apply_undo) WITHOUT writing the
  /// store: the caller replays the restored versions concurrently,
  /// partitioned by object, via write_restored_version.
  InstanceId commit_undo_prepared(InstanceId target, std::vector<Value> restored);

  /// Store write under per-object locking; see
  /// VersionedStore::write_guarded for the ordering contract.
  void write_restored_version(wfspec::ObjectId object, Value value, SeqNo seq,
                              InstanceId writer);

  /// Materialises lazily-initialised store state for at least
  /// `min_objects` objects so concurrent readers never mutate it. Call
  /// single-threaded before every parallel phase (serial commits may
  /// have extended the object range since the last call).
  void prepare_store_concurrency(std::size_t min_objects = 0);

  /// Brackets a durability group around a batch of commits; forwarded to
  /// DurabilityObserver::on_group_begin/on_group_end.
  void begin_durability_group();
  void end_durability_group();

  /// The branch successor `task` would choose given current store
  /// contents (without committing anything).
  [[nodiscard]] std::optional<wfspec::TaskId> peek_choice(RunId run,
                                                          wfspec::TaskId task) const;

  /// The task an active run would execute next; nullopt if complete.
  [[nodiscard]] std::optional<wfspec::TaskId> peek_next_task(RunId run) const;

  /// Rewrites an in-flight run's control state after recovery moved it to
  /// a different execution path: the next task to execute and the visit
  /// counters along the repaired path. Passing pc == kInvalidTask marks
  /// the run complete.
  void resume_run(RunId run, wfspec::TaskId pc,
                  const std::map<wfspec::TaskId, int>& visits);

  [[nodiscard]] const EngineConfig& config() const noexcept { return config_; }

  // --- Snapshot / restore support (see engine/session_io.hpp) ---

  /// A run's control state, for persistence.
  struct RunSnapshot {
    wfspec::TaskId pc = wfspec::kInvalidTask;
    bool active = false;
    bool aborted = false;
    std::map<wfspec::TaskId, int> visits;
    std::vector<std::pair<wfspec::TaskId, int>> pending_malicious;
  };
  [[nodiscard]] RunSnapshot run_snapshot(RunId run) const;

  /// Re-appends a persisted log entry: applies its writes to the store
  /// and restores it into the log verbatim. Entries must be imported in
  /// their original order (ids/seqs must line up). Does not touch run
  /// control state -- restore that afterwards via resume_run and
  /// inject_malicious.
  void import_entry(TaskInstance entry);

 private:
  struct Run {
    const wfspec::WorkflowSpec* spec = nullptr;
    wfspec::TaskId pc = wfspec::kInvalidTask;  // next task to execute
    bool active = false;
    bool aborted = false;  // permanently failed (graceful degradation)
    std::map<wfspec::TaskId, int> visits;      // incarnation counters
    std::set<std::pair<wfspec::TaskId, int>> malicious;
  };

  /// Pure read/compute/branch phase of one task instance: builds the
  /// entry apply_* would commit, without metrics or side effects (except
  /// store reads when read_override is null). logical_slot == 0 means
  /// "assign the commit seq" (normal execution).
  [[nodiscard]] TaskInstance build_instance(
      RunId run, wfspec::TaskId task, int incarnation, ActionKind kind,
      InstanceId target, SeqNo logical_slot,
      const std::vector<Value>* read_override = nullptr) const;

  /// Commit phase: assigns seq/id, writes the store, appends the log.
  InstanceId commit_instance(TaskInstance entry);

  /// Executes one task instance and commits it (metrics + build +
  /// commit). Shared by normal execution, redo, and fresh execution.
  /// read_override, if non-null, replaces store reads (recovery
  /// clean-timeline values).
  InstanceId execute(RunId run, wfspec::TaskId task, int incarnation,
                     ActionKind kind, InstanceId target, SeqNo logical_slot,
                     const std::vector<Value>* read_override = nullptr);

  /// Executes the next task of runs_[pick] and advances its cursor.
  void advance(std::size_t pick);

  [[nodiscard]] SeqNo next_seq() const {
    return static_cast<SeqNo>(log_.size()) + 1;
  }

  EngineConfig config_;
  util::Rng rng_;
  FaultInjector fault_injector_;
  DurabilityObserver* durability_observer_ = nullptr;
  std::vector<Run> runs_;
  SystemLog log_;
  VersionedStore store_;
  std::size_t rr_cursor_ = 0;  // round-robin position
  std::vector<RunId> schedule_;
  std::size_t schedule_cursor_ = 0;
};

}  // namespace selfheal::engine
