#include "selfheal/engine/session_io.hpp"

#include <charconv>
#include <cstdio>
#include <fstream>
#include <map>
#include <sstream>
#include <stdexcept>
#include <string_view>

#include "selfheal/storage/crc32c.hpp"
#include "selfheal/util/fsio.hpp"
#include "selfheal/wfspec/parser.hpp"

namespace selfheal::engine {

namespace {

constexpr const char* kMagic = "selfheal-session";
// Version 2 added the per-run aborted flag (graceful degradation).
// Version 3 added the trailing whole-file checksum line.
constexpr int kVersion = 3;
constexpr int kMinVersion = 2;

// Hostile-input bounds: a session is rejected, not believed, when it
// declares absurd sizes. Lines are capped so a single line cannot be
// used to balloon parser state.
constexpr std::size_t kMaxLineLen = std::size_t{1} << 20;       // 1 MiB
constexpr std::uint64_t kMaxDeclaredCount = std::uint64_t{1} << 24;

int kind_code(ActionKind kind) { return static_cast<int>(kind); }

[[noreturn]] void fail(std::size_t line_no, const std::string& message) {
  throw std::invalid_argument("session line " + std::to_string(line_no) + ": " +
                              message);
}

ActionKind kind_from(int code, std::size_t line_no) {
  switch (code) {
    case 0: return ActionKind::kNormal;
    case 1: return ActionKind::kMalicious;
    case 2: return ActionKind::kUndo;
    case 3: return ActionKind::kRedo;
    case 4: return ActionKind::kFresh;
    case 5: return ActionKind::kRepair;
  }
  fail(line_no, "unknown action kind " + std::to_string(code));
}

/// Strict integer parse: the whole token must be one in-range integer.
/// std::from_chars never throws on garbage and never allocates, so a
/// hostile token costs O(len) and produces a line-numbered error.
template <typename T>
T parse_int(std::string_view token, std::size_t line_no, const char* what) {
  T value{};
  const char* first = token.data();
  const char* last = token.data() + token.size();
  const auto result = std::from_chars(first, last, value);
  if (token.empty() || result.ec != std::errc() || result.ptr != last) {
    fail(line_no, std::string("bad ") + what + " '" + std::string(token) + "'");
  }
  return value;
}

std::string need_token(std::istringstream& ln, std::size_t line_no,
                       const char* what) {
  std::string token;
  if (!(ln >> token)) fail(line_no, std::string("missing ") + what);
  return token;
}

template <typename T>
T need_int(std::istringstream& ln, std::size_t line_no, const char* what) {
  return parse_int<T>(need_token(ln, line_no, what), line_no, what);
}

std::size_t need_count(std::istringstream& ln, std::size_t line_no,
                       const char* what) {
  const auto count = need_int<std::uint64_t>(ln, line_no, what);
  if (count > kMaxDeclaredCount) {
    fail(line_no, std::string("implausible ") + what + " " +
                      std::to_string(count));
  }
  return static_cast<std::size_t>(count);
}

/// Splits an "object:value" pair token.
std::pair<wfspec::ObjectId, Value> parse_pair(const std::string& token,
                                              std::size_t line_no,
                                              const char* what) {
  const auto colon = token.find(':');
  if (colon == std::string::npos || colon == 0 || colon + 1 == token.size()) {
    fail(line_no, std::string("bad ") + what + " pair '" + token + "'");
  }
  const auto object = parse_int<wfspec::ObjectId>(
      std::string_view(token).substr(0, colon), line_no, what);
  if (object < 0) fail(line_no, std::string("negative object id in ") + what);
  const auto value = parse_int<Value>(std::string_view(token).substr(colon + 1),
                                      line_no, what);
  return {object, value};
}

void expect_done(std::istringstream& ln, std::size_t line_no) {
  std::string extra;
  if (ln >> extra) fail(line_no, "trailing token '" + extra + "'");
}

}  // namespace

std::string format_log_entry(const TaskInstance& e) {
  std::ostringstream out;
  out << "entry " << e.id << " " << e.run << " " << e.task << " "
      << e.incarnation << " " << kind_code(e.kind) << " " << e.seq << " "
      << e.logical_slot << " " << e.target << " R";
  for (std::size_t i = 0; i < e.read_objects.size(); ++i) {
    out << " " << e.read_objects[i] << ":" << e.read_values[i];
  }
  out << " W";
  for (std::size_t i = 0; i < e.written_objects.size(); ++i) {
    out << " " << e.written_objects[i] << ":" << e.written_values[i];
  }
  out << " C "
      << (e.chosen_successor ? *e.chosen_successor : wfspec::kInvalidTask);
  return out.str();
}

TaskInstance parse_log_entry(const std::string& line, std::size_t line_no) {
  if (line.size() > kMaxLineLen) fail(line_no, "entry line too long");
  std::istringstream ln(line);
  TaskInstance e;
  if (need_token(ln, line_no, "entry keyword") != "entry") {
    fail(line_no, "expected entry");
  }
  e.id = need_int<InstanceId>(ln, line_no, "entry id");
  e.run = need_int<RunId>(ln, line_no, "entry run");
  e.task = need_int<wfspec::TaskId>(ln, line_no, "entry task");
  e.incarnation = need_int<int>(ln, line_no, "entry incarnation");
  e.kind = kind_from(need_int<int>(ln, line_no, "entry kind"), line_no);
  e.seq = need_int<SeqNo>(ln, line_no, "entry seq");
  e.logical_slot = need_int<SeqNo>(ln, line_no, "entry slot");
  e.target = need_int<InstanceId>(ln, line_no, "entry target");
  if (e.id < 0) fail(line_no, "negative entry id");
  // Repair entries are run-less and task-less (-1); everything else
  // must name a real task.
  if (e.task < 0 && e.kind != ActionKind::kRepair) {
    fail(line_no, "negative entry task");
  }
  if (need_token(ln, line_no, "R section") != "R") {
    fail(line_no, "expected R section");
  }
  std::string token;
  bool saw_w = false;
  while (ln >> token) {
    if (token == "W") {
      saw_w = true;
      break;
    }
    const auto [object, value] = parse_pair(token, line_no, "read");
    e.read_objects.push_back(object);
    e.read_values.push_back(value);
  }
  if (!saw_w) fail(line_no, "expected W section");
  bool saw_c = false;
  while (ln >> token) {
    if (token == "C") {
      saw_c = true;
      break;
    }
    const auto [object, value] = parse_pair(token, line_no, "write");
    e.written_objects.push_back(object);
    e.written_values.push_back(value);
  }
  if (!saw_c) fail(line_no, "expected C section");
  const auto chosen = need_int<wfspec::TaskId>(ln, line_no, "chosen successor");
  if (chosen != wfspec::kInvalidTask) {
    if (chosen < 0) fail(line_no, "negative chosen successor");
    e.chosen_successor = chosen;
  }
  expect_done(ln, line_no);
  return e;
}

void save_session(const Engine& engine, std::ostream& out) {
  std::ostringstream body;
  body << kMagic << " " << kVersion << "\n";
  const auto& config = engine.config();
  body << "config " << static_cast<int>(config.interleave) << " " << config.seed
       << " " << config.max_incarnations << "\n";

  // Catalog (in id order, so reload reproduces the ids). Every spec
  // shares one catalog; reach it through any run's spec, or skip if the
  // engine has no runs (nothing to serialise then anyway).
  const auto specs_by_run = engine.specs_by_run();
  const wfspec::ObjectCatalog* catalog =
      specs_by_run.empty() ? nullptr : &specs_by_run.front()->catalog();
  body << "catalog " << (catalog ? catalog->size() : 0) << "\n";
  if (catalog != nullptr) {
    for (std::size_t o = 0; o < catalog->size(); ++o) {
      body << "obj " << o << " "
           << catalog->name(static_cast<wfspec::ObjectId>(o)) << "\n";
    }
  }

  // Unique specs, in order of first use by a run.
  std::vector<const wfspec::WorkflowSpec*> unique_specs;
  std::map<const wfspec::WorkflowSpec*, std::size_t> spec_index;
  for (const auto* spec : specs_by_run) {
    if (spec_index.emplace(spec, unique_specs.size()).second) {
      unique_specs.push_back(spec);
    }
  }
  body << "specs " << unique_specs.size() << "\n";
  for (const auto* spec : unique_specs) {
    body << "spec-begin\n" << wfspec::to_dsl(*spec) << "spec-end\n";
  }

  // Runs with control state.
  body << "runs " << engine.run_count() << "\n";
  for (std::size_t r = 0; r < engine.run_count(); ++r) {
    const auto run = static_cast<RunId>(r);
    const auto snapshot = engine.run_snapshot(run);
    body << "run " << spec_index.at(specs_by_run[r]) << " "
         << (snapshot.active ? 1 : 0) << " " << (snapshot.aborted ? 1 : 0)
         << " " << snapshot.pc << " visits";
    for (const auto& [task, count] : snapshot.visits) {
      body << " " << task << ":" << count;
    }
    body << "\n";
    for (const auto& [task, inc] : snapshot.pending_malicious) {
      body << "inject " << r << " " << task << " " << inc << "\n";
    }
  }

  // The system log.
  body << "log " << engine.log().size() << "\n";
  for (const auto& e : engine.log().entries()) {
    body << format_log_entry(e) << "\n";
  }
  body << "end\n";

  // Whole-file integrity: CRC32C over every byte above, so a reader can
  // tell storage damage from a parser bug.
  const std::string text = body.str();
  char checksum[16];
  std::snprintf(checksum, sizeof(checksum), "%08x",
                storage::crc32c(text));
  out << text << "checksum " << checksum << "\n";
}

void save_session_file(const Engine& engine, const std::string& path) {
  std::ostringstream out;
  save_session(engine, out);
  util::write_file_atomic(path, out.str());
}

namespace {

Session load_session_impl(std::istream& in) {
  Session session;
  session.catalog = std::make_unique<wfspec::ObjectCatalog>();

  std::string line;
  std::size_t line_no = 0;
  // Running checksum over every consumed line (newline-normalised),
  // verified against the trailing checksum line of v3 sessions.
  std::uint32_t crc = storage::crc32c_init();
  auto next_line = [&]() -> std::istringstream {
    if (!std::getline(in, line)) fail(line_no, "unexpected end of session");
    ++line_no;
    if (line.size() > kMaxLineLen) fail(line_no, "line too long");
    crc = storage::crc32c_update(crc, line);
    crc = storage::crc32c_update(crc, std::string_view("\n", 1));
    return std::istringstream(line);
  };

  int version = 0;
  {
    auto header = next_line();
    const auto magic = need_token(header, line_no, "magic");
    version = need_int<int>(header, line_no, "version");
    if (magic != kMagic) fail(line_no, "bad magic");
    if (version < kMinVersion || version > kVersion) {
      fail(line_no, "unsupported session version " + std::to_string(version));
    }
    expect_done(header, line_no);
  }

  EngineConfig config;
  {
    auto ln = next_line();
    if (need_token(ln, line_no, "config keyword") != "config") {
      fail(line_no, "expected config");
    }
    const int interleave = need_int<int>(ln, line_no, "interleave");
    if (interleave < 0 || interleave > static_cast<int>(Interleave::kExplicit)) {
      fail(line_no, "bad interleave " + std::to_string(interleave));
    }
    config.interleave = static_cast<Interleave>(interleave);
    config.seed = need_int<std::uint64_t>(ln, line_no, "seed");
    config.max_incarnations = need_int<int>(ln, line_no, "max incarnations");
    expect_done(ln, line_no);
  }

  {
    auto ln = next_line();
    if (need_token(ln, line_no, "catalog keyword") != "catalog") {
      fail(line_no, "expected catalog");
    }
    const auto count = need_count(ln, line_no, "catalog size");
    expect_done(ln, line_no);
    for (std::size_t i = 0; i < count; ++i) {
      auto obj_line = next_line();
      if (need_token(obj_line, line_no, "obj keyword") != "obj") {
        fail(line_no, "bad obj line");
      }
      const auto id = need_int<wfspec::ObjectId>(obj_line, line_no, "object id");
      const auto name = need_token(obj_line, line_no, "object name");
      expect_done(obj_line, line_no);
      if (session.catalog->intern(name) != id) {
        fail(line_no, "catalog ids out of order");
      }
    }
  }

  {
    auto ln = next_line();
    if (need_token(ln, line_no, "specs keyword") != "specs") {
      fail(line_no, "expected specs");
    }
    const auto count = need_count(ln, line_no, "spec count");
    expect_done(ln, line_no);
    for (std::size_t s = 0; s < count; ++s) {
      auto begin = next_line();
      if (need_token(begin, line_no, "spec-begin") != "spec-begin") {
        fail(line_no, "expected spec-begin");
      }
      const std::size_t spec_first_line = line_no + 1;
      std::ostringstream dsl;
      while (true) {
        (void)next_line();  // refreshes `line`
        if (line == "spec-end") break;
        dsl << line << "\n";
      }
      try {
        session.specs.push_back(std::make_unique<wfspec::WorkflowSpec>(
            wfspec::parse_workflow(dsl.str(), *session.catalog)));
      } catch (const std::exception& e) {
        // Spec-DSL errors get the same line-numbered context as every
        // other rejection.
        fail(spec_first_line, std::string("bad workflow spec: ") + e.what());
      }
    }
  }

  session.engine = std::make_unique<Engine>(config);
  struct PendingRun {
    Engine::RunSnapshot snapshot;
    std::size_t line_no = 0;
  };
  std::vector<PendingRun> pending;
  std::size_t run_count_declared = 0;
  {
    auto ln = next_line();
    if (need_token(ln, line_no, "runs keyword") != "runs") {
      fail(line_no, "expected runs");
    }
    run_count_declared = need_count(ln, line_no, "run count");
    expect_done(ln, line_no);
    for (std::size_t r = 0; r < run_count_declared;) {
      auto run_line = next_line();
      const auto keyword = need_token(run_line, line_no, "run keyword");
      if (keyword == "inject") {
        const auto run = need_int<RunId>(run_line, line_no, "inject run");
        const auto task = need_int<wfspec::TaskId>(run_line, line_no,
                                                   "inject task");
        const auto inc = need_int<int>(run_line, line_no, "inject incarnation");
        expect_done(run_line, line_no);
        if (run < 0 || static_cast<std::size_t>(run) >= pending.size()) {
          fail(line_no, "inject references unknown run");
        }
        pending[static_cast<std::size_t>(run)]
            .snapshot.pending_malicious.emplace_back(task, inc);
        continue;
      }
      if (keyword != "run") fail(line_no, "expected run");
      const auto spec_idx = need_count(run_line, line_no, "spec index");
      const int active = need_int<int>(run_line, line_no, "active flag");
      const int aborted = need_int<int>(run_line, line_no, "aborted flag");
      PendingRun p;
      p.line_no = line_no;
      p.snapshot.pc = need_int<wfspec::TaskId>(run_line, line_no, "run pc");
      p.snapshot.active = active != 0;
      p.snapshot.aborted = aborted != 0;
      if (need_token(run_line, line_no, "visits keyword") != "visits") {
        fail(line_no, "expected visits");
      }
      std::string pair;
      while (run_line >> pair) {
        const auto [task, count] = parse_pair(pair, line_no, "visits");
        p.snapshot.visits[task] = static_cast<int>(count);
      }
      if (spec_idx >= session.specs.size()) {
        fail(line_no, "run references unknown spec " + std::to_string(spec_idx));
      }
      session.engine->start_run(*session.specs[spec_idx]);
      pending.push_back(std::move(p));
      ++r;
    }
  }

  {
    auto ln = next_line();
    std::string keyword = need_token(ln, line_no, "log keyword");
    // Injects of the final run may appear between "runs" and "log".
    while (keyword == "inject") {
      const auto run = need_int<RunId>(ln, line_no, "inject run");
      const auto task = need_int<wfspec::TaskId>(ln, line_no, "inject task");
      const auto inc = need_int<int>(ln, line_no, "inject incarnation");
      expect_done(ln, line_no);
      if (run < 0 || static_cast<std::size_t>(run) >= pending.size()) {
        fail(line_no, "inject references unknown run");
      }
      pending[static_cast<std::size_t>(run)]
          .snapshot.pending_malicious.emplace_back(task, inc);
      ln = next_line();
      keyword = need_token(ln, line_no, "log keyword");
    }
    if (keyword != "log") fail(line_no, "expected log");
    const auto count = need_count(ln, line_no, "log size");
    expect_done(ln, line_no);
    for (std::size_t i = 0; i < count; ++i) {
      (void)next_line();
      auto e = parse_log_entry(line, line_no);
      if (e.run < 0 || static_cast<std::size_t>(e.run) >= pending.size()) {
        if (e.kind != ActionKind::kRepair) {
          fail(line_no, "entry references unknown run");
        }
      }
      try {
        session.engine->import_entry(std::move(e));
      } catch (const std::exception& ex) {
        fail(line_no, std::string("inconsistent log entry: ") + ex.what());
      }
    }
  }

  {
    auto ln = next_line();
    if (need_token(ln, line_no, "end keyword") != "end") {
      fail(line_no, "expected end");
    }
    expect_done(ln, line_no);
  }

  if (version >= 3) {
    // The checksum covers everything up to and including "end\n".
    const std::uint32_t computed = storage::crc32c_finish(crc);
    auto ln = next_line();
    if (need_token(ln, line_no, "checksum keyword") != "checksum") {
      fail(line_no, "expected checksum");
    }
    const auto token = need_token(ln, line_no, "checksum value");
    expect_done(ln, line_no);
    std::uint32_t stored = 0;
    const auto result =
        std::from_chars(token.data(), token.data() + token.size(), stored, 16);
    if (result.ec != std::errc() || result.ptr != token.data() + token.size()) {
      fail(line_no, "bad checksum value '" + token + "'");
    }
    if (stored != computed) {
      char expect[16];
      std::snprintf(expect, sizeof(expect), "%08x", computed);
      fail(line_no, "checksum mismatch: stored " + token + ", computed " +
                        std::string(expect));
    }
  }

  // Nothing may follow the session: appended bytes are damage (or an
  // injection attempt), not padding.
  if (std::string extra; std::getline(in, extra)) {
    fail(line_no + 1, "trailing data after session");
  }

  // Finally restore run control state and pending injections.
  for (std::size_t r = 0; r < pending.size(); ++r) {
    const auto run = static_cast<RunId>(r);
    const auto& snapshot = pending[r].snapshot;
    try {
      session.engine->resume_run(
          run, snapshot.active ? snapshot.pc : wfspec::kInvalidTask,
          snapshot.visits);
      if (snapshot.aborted) session.engine->abort_run(run);
      for (const auto& [task, inc] : snapshot.pending_malicious) {
        session.engine->inject_malicious(run, task, inc);
      }
    } catch (const std::exception& ex) {
      fail(pending[r].line_no,
           std::string("inconsistent run control state: ") + ex.what());
    }
  }
  return session;
}

}  // namespace

Session load_session(std::istream& in) {
  try {
    return load_session_impl(in);
  } catch (const std::invalid_argument&) {
    throw;
  } catch (const std::exception& e) {
    // Safety net: no hostile byte stream may escalate past
    // invalid_argument (e.g. std::bad_alloc, container out_of_range).
    throw std::invalid_argument(std::string("session: ") + e.what());
  }
}

Session load_session_file(const std::string& path) {
  std::ifstream in(path);
  if (!in) throw std::runtime_error("load_session_file: cannot open " + path);
  return load_session(in);
}

}  // namespace selfheal::engine
