#include "selfheal/engine/session_io.hpp"

#include <fstream>
#include <map>
#include <sstream>
#include <stdexcept>

#include "selfheal/wfspec/parser.hpp"

namespace selfheal::engine {

namespace {

constexpr const char* kMagic = "selfheal-session";
// Version 2 added the per-run aborted flag (graceful degradation).
constexpr int kVersion = 2;

int kind_code(ActionKind kind) { return static_cast<int>(kind); }

ActionKind kind_from(int code) {
  switch (code) {
    case 0: return ActionKind::kNormal;
    case 1: return ActionKind::kMalicious;
    case 2: return ActionKind::kUndo;
    case 3: return ActionKind::kRedo;
    case 4: return ActionKind::kFresh;
    case 5: return ActionKind::kRepair;
  }
  throw std::invalid_argument("session: unknown action kind " + std::to_string(code));
}

[[noreturn]] void fail(std::size_t line_no, const std::string& message) {
  throw std::invalid_argument("session line " + std::to_string(line_no) + ": " +
                              message);
}

}  // namespace

void save_session(const Engine& engine, std::ostream& out) {
  out << kMagic << " " << kVersion << "\n";
  const auto& config = engine.config();
  out << "config " << static_cast<int>(config.interleave) << " " << config.seed
      << " " << config.max_incarnations << "\n";

  // Catalog (in id order, so reload reproduces the ids). Every spec
  // shares one catalog; reach it through any run's spec, or skip if the
  // engine has no runs (nothing to serialise then anyway).
  const auto specs_by_run = engine.specs_by_run();
  const wfspec::ObjectCatalog* catalog =
      specs_by_run.empty() ? nullptr : &specs_by_run.front()->catalog();
  out << "catalog " << (catalog ? catalog->size() : 0) << "\n";
  if (catalog != nullptr) {
    for (std::size_t o = 0; o < catalog->size(); ++o) {
      out << "obj " << o << " " << catalog->name(static_cast<wfspec::ObjectId>(o))
          << "\n";
    }
  }

  // Unique specs, in order of first use by a run.
  std::vector<const wfspec::WorkflowSpec*> unique_specs;
  std::map<const wfspec::WorkflowSpec*, std::size_t> spec_index;
  for (const auto* spec : specs_by_run) {
    if (spec_index.emplace(spec, unique_specs.size()).second) {
      unique_specs.push_back(spec);
    }
  }
  out << "specs " << unique_specs.size() << "\n";
  for (const auto* spec : unique_specs) {
    out << "spec-begin\n" << wfspec::to_dsl(*spec) << "spec-end\n";
  }

  // Runs with control state.
  out << "runs " << engine.run_count() << "\n";
  for (std::size_t r = 0; r < engine.run_count(); ++r) {
    const auto run = static_cast<RunId>(r);
    const auto snapshot = engine.run_snapshot(run);
    out << "run " << spec_index.at(specs_by_run[r]) << " "
        << (snapshot.active ? 1 : 0) << " " << (snapshot.aborted ? 1 : 0) << " "
        << snapshot.pc << " visits";
    for (const auto& [task, count] : snapshot.visits) {
      out << " " << task << ":" << count;
    }
    out << "\n";
    for (const auto& [task, inc] : snapshot.pending_malicious) {
      out << "inject " << r << " " << task << " " << inc << "\n";
    }
  }

  // The system log.
  out << "log " << engine.log().size() << "\n";
  for (const auto& e : engine.log().entries()) {
    out << "entry " << e.id << " " << e.run << " " << e.task << " "
        << e.incarnation << " " << kind_code(e.kind) << " " << e.seq << " "
        << e.logical_slot << " " << e.target << " R";
    for (std::size_t i = 0; i < e.read_objects.size(); ++i) {
      out << " " << e.read_objects[i] << ":" << e.read_values[i];
    }
    out << " W";
    for (std::size_t i = 0; i < e.written_objects.size(); ++i) {
      out << " " << e.written_objects[i] << ":" << e.written_values[i];
    }
    out << " C " << (e.chosen_successor ? *e.chosen_successor : wfspec::kInvalidTask)
        << "\n";
  }
  out << "end\n";
}

void save_session_file(const Engine& engine, const std::string& path) {
  std::ofstream out(path);
  if (!out) throw std::runtime_error("save_session_file: cannot open " + path);
  save_session(engine, out);
}

Session load_session(std::istream& in) {
  Session session;
  session.catalog = std::make_unique<wfspec::ObjectCatalog>();

  std::string line;
  std::size_t line_no = 0;
  auto next_line = [&]() -> std::istringstream {
    if (!std::getline(in, line)) fail(line_no, "unexpected end of session");
    ++line_no;
    return std::istringstream(line);
  };

  {
    auto header = next_line();
    std::string magic;
    int version = 0;
    header >> magic >> version;
    if (magic != kMagic || version != kVersion) fail(line_no, "bad header");
  }

  EngineConfig config;
  {
    auto ln = next_line();
    std::string keyword;
    int interleave = 0;
    ln >> keyword >> interleave >> config.seed >> config.max_incarnations;
    if (keyword != "config") fail(line_no, "expected config");
    config.interleave = static_cast<Interleave>(interleave);
  }

  {
    auto ln = next_line();
    std::string keyword;
    std::size_t count = 0;
    ln >> keyword >> count;
    if (keyword != "catalog") fail(line_no, "expected catalog");
    for (std::size_t i = 0; i < count; ++i) {
      auto obj_line = next_line();
      std::string obj_keyword, name;
      wfspec::ObjectId id;
      obj_line >> obj_keyword >> id >> name;
      if (obj_keyword != "obj" || name.empty()) fail(line_no, "bad obj line");
      if (session.catalog->intern(name) != id) {
        fail(line_no, "catalog ids out of order");
      }
    }
  }

  {
    auto ln = next_line();
    std::string keyword;
    std::size_t count = 0;
    ln >> keyword >> count;
    if (keyword != "specs") fail(line_no, "expected specs");
    for (std::size_t s = 0; s < count; ++s) {
      auto begin = next_line();
      std::string keyword2;
      begin >> keyword2;
      if (keyword2 != "spec-begin") fail(line_no, "expected spec-begin");
      std::ostringstream dsl;
      while (true) {
        (void)next_line();  // refreshes `line`
        if (line == "spec-end") break;
        dsl << line << "\n";
      }
      session.specs.push_back(std::make_unique<wfspec::WorkflowSpec>(
          wfspec::parse_workflow(dsl.str(), *session.catalog)));
    }
  }

  session.engine = std::make_unique<Engine>(config);
  struct PendingRun {
    Engine::RunSnapshot snapshot;
  };
  std::vector<PendingRun> pending;
  {
    auto ln = next_line();
    std::string keyword;
    std::size_t count = 0;
    ln >> keyword >> count;
    if (keyword != "runs") fail(line_no, "expected runs");
    for (std::size_t r = 0; r < count;) {
      auto run_line = next_line();
      std::string keyword2;
      run_line >> keyword2;
      if (keyword2 == "inject") {
        RunId run;
        wfspec::TaskId task;
        int inc;
        run_line >> run >> task >> inc;
        pending.at(static_cast<std::size_t>(run))
            .snapshot.pending_malicious.emplace_back(task, inc);
        continue;
      }
      if (keyword2 != "run") fail(line_no, "expected run");
      std::size_t spec_idx;
      int active;
      int aborted;
      PendingRun p;
      run_line >> spec_idx >> active >> aborted >> p.snapshot.pc;
      p.snapshot.active = active != 0;
      p.snapshot.aborted = aborted != 0;
      std::string visits_kw;
      run_line >> visits_kw;
      if (visits_kw != "visits") fail(line_no, "expected visits");
      std::string pair;
      while (run_line >> pair) {
        const auto colon = pair.find(':');
        if (colon == std::string::npos) fail(line_no, "bad visits pair");
        p.snapshot.visits[static_cast<wfspec::TaskId>(
            std::stol(pair.substr(0, colon)))] = std::stoi(pair.substr(colon + 1));
      }
      session.engine->start_run(*session.specs.at(spec_idx));
      pending.push_back(std::move(p));
      ++r;
    }
    // Trailing injects of the last run.
    // (handled in-loop above via the `continue` branch)
  }

  {
    auto ln = next_line();
    std::string keyword;
    std::size_t count = 0;
    // Injects may appear between "runs" and "log"; absorb them.
    ln >> keyword;
    while (keyword == "inject") {
      RunId run;
      wfspec::TaskId task;
      int inc;
      ln >> run >> task >> inc;
      pending.at(static_cast<std::size_t>(run))
          .snapshot.pending_malicious.emplace_back(task, inc);
      ln = next_line();
      ln >> keyword;
    }
    if (keyword != "log") fail(line_no, "expected log");
    ln >> count;
    for (std::size_t i = 0; i < count; ++i) {
      auto entry_line = next_line();
      std::string keyword2, marker;
      TaskInstance e;
      int kind;
      entry_line >> keyword2 >> e.id >> e.run >> e.task >> e.incarnation >> kind >>
          e.seq >> e.logical_slot >> e.target;
      if (keyword2 != "entry") fail(line_no, "expected entry");
      e.kind = kind_from(kind);
      entry_line >> marker;
      if (marker != "R") fail(line_no, "expected R section");
      std::string token;
      while (entry_line >> token && token != "W") {
        const auto colon = token.find(':');
        if (colon == std::string::npos) fail(line_no, "bad read pair");
        e.read_objects.push_back(
            static_cast<wfspec::ObjectId>(std::stol(token.substr(0, colon))));
        e.read_values.push_back(std::stoll(token.substr(colon + 1)));
      }
      while (entry_line >> token && token != "C") {
        const auto colon = token.find(':');
        if (colon == std::string::npos) fail(line_no, "bad write pair");
        e.written_objects.push_back(
            static_cast<wfspec::ObjectId>(std::stol(token.substr(0, colon))));
        e.written_values.push_back(std::stoll(token.substr(colon + 1)));
      }
      wfspec::TaskId chosen;
      entry_line >> chosen;
      if (chosen != wfspec::kInvalidTask) e.chosen_successor = chosen;
      session.engine->import_entry(std::move(e));
    }
  }

  {
    auto ln = next_line();
    std::string keyword;
    ln >> keyword;
    if (keyword != "end") fail(line_no, "expected end");
  }

  // Finally restore run control state and pending injections.
  for (std::size_t r = 0; r < pending.size(); ++r) {
    const auto run = static_cast<RunId>(r);
    const auto& snapshot = pending[r].snapshot;
    session.engine->resume_run(run, snapshot.active ? snapshot.pc : wfspec::kInvalidTask,
                               snapshot.visits);
    if (snapshot.aborted) session.engine->abort_run(run);
    for (const auto& [task, inc] : snapshot.pending_malicious) {
      session.engine->inject_malicious(run, task, inc);
    }
  }
  return session;
}

Session load_session_file(const std::string& path) {
  std::ifstream in(path);
  if (!in) throw std::runtime_error("load_session_file: cannot open " + path);
  return load_session(in);
}

}  // namespace selfheal::engine
