// Session persistence.
//
// The paper's recovery operates on durable artifacts: the workflow
// specifications and the system log ("the system log ... exists in all
// workflow management systems", Section IV.B). This module makes that
// concrete: a Session (catalog + specs + engine) can be saved as a
// line-oriented text file and reloaded into an equivalent engine --
// including after a crash mid-workflow -- and recovery runs on the
// reloaded engine exactly as on the original. The versioned store is
// not serialised: it is reconstructed by re-applying the log's writes.
#pragma once

#include <iosfwd>
#include <memory>
#include <string>
#include <vector>

#include "selfheal/engine/engine.hpp"
#include "selfheal/wfspec/workflow_spec.hpp"

namespace selfheal::engine {

/// An engine together with the objects it depends on (the engine holds
/// pointers into catalog/specs, so the three live and move together).
struct Session {
  std::unique_ptr<wfspec::ObjectCatalog> catalog;
  std::vector<std::unique_ptr<wfspec::WorkflowSpec>> specs;
  std::unique_ptr<Engine> engine;
};

/// Serialises the engine state: config, catalog, workflow DSL, runs
/// (with control state), pending malicious injections, and the log.
void save_session(const Engine& engine, std::ostream& out);
void save_session_file(const Engine& engine, const std::string& path);

/// Reconstructs a session from a stream produced by save_session.
/// Throws std::invalid_argument with a line-numbered message on
/// malformed input.
[[nodiscard]] Session load_session(std::istream& in);
[[nodiscard]] Session load_session_file(const std::string& path);

}  // namespace selfheal::engine
