// Session persistence.
//
// The paper's recovery operates on durable artifacts: the workflow
// specifications and the system log ("the system log ... exists in all
// workflow management systems", Section IV.B). This module makes that
// concrete: a Session (catalog + specs + engine) can be saved as a
// line-oriented text file and reloaded into an equivalent engine --
// including after a crash mid-workflow -- and recovery runs on the
// reloaded engine exactly as on the original. The versioned store is
// not serialised: it is reconstructed by re-applying the log's writes.
//
// Format version 3 appends a trailing "checksum <crc32c-hex>" line
// covering every preceding byte, so storage-level damage to a session
// file is detected instead of silently parsed. Version-2 files (no
// checksum) still load. Files are written atomically
// (temp + fsync + rename): a crash mid-save never leaves a torn file.
//
// load_session is hardened against hostile input: any malformed byte
// stream raises std::invalid_argument with a line-numbered message --
// never a crash, hang, or unbounded allocation.
#pragma once

#include <cstddef>
#include <iosfwd>
#include <memory>
#include <string>
#include <vector>

#include "selfheal/engine/engine.hpp"
#include "selfheal/wfspec/workflow_spec.hpp"

namespace selfheal::engine {

/// An engine together with the objects it depends on (the engine holds
/// pointers into catalog/specs, so the three live and move together).
struct Session {
  std::unique_ptr<wfspec::ObjectCatalog> catalog;
  std::vector<std::unique_ptr<wfspec::WorkflowSpec>> specs;
  std::unique_ptr<Engine> engine;
};

/// Serialises the engine state: config, catalog, workflow DSL, runs
/// (with control state), pending malicious injections, and the log.
/// The stream form carries the same trailing checksum as the file form.
void save_session(const Engine& engine, std::ostream& out);
/// Atomic file save (temp + fsync + rename).
void save_session_file(const Engine& engine, const std::string& path);

/// Reconstructs a session from a stream produced by save_session
/// (format version 2 or 3). Throws std::invalid_argument with a
/// line-numbered message on malformed input.
[[nodiscard]] Session load_session(std::istream& in);
[[nodiscard]] Session load_session_file(const std::string& path);

/// One log entry as its session line (leading "entry", no newline).
/// This is also the WAL record payload format of the durable session
/// layer, so a WAL replay and a session load parse identically.
[[nodiscard]] std::string format_log_entry(const TaskInstance& entry);

/// Parses a line produced by format_log_entry. `line_no` only labels
/// the std::invalid_argument raised on malformed input.
[[nodiscard]] TaskInstance parse_log_entry(const std::string& line,
                                           std::size_t line_no = 0);

}  // namespace selfheal::engine
