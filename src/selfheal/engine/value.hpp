// Deterministic task semantics.
//
// Every task's outputs are a pure hash-mix of (workflow name, task name,
// output object, incarnation, values read). This gives the reproduction
// an *oracle*: re-running any workflow over clean inputs yields bit-equal
// results, so "incorrect data" (Axiom 1) is decidable by comparison with
// a clean re-execution, and the strict-correctness criteria of
// Definition 2 are mechanically checkable in tests.
//
// A malicious execution corrupts outputs with a fixed involution so that
// attacks are deterministic too (tests can replay them exactly).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "selfheal/util/rng.hpp"
#include "selfheal/wfspec/object_catalog.hpp"

namespace selfheal::engine {

using Value = std::int64_t;

/// Initial (version 0) value of a data object: a function of the object
/// id only, so independent engines over the same catalog agree.
[[nodiscard]] Value initial_value(wfspec::ObjectId object);

/// Stable 64-bit seed for a task, derived from workflow and task names.
[[nodiscard]] std::uint64_t task_seed(const std::string& workflow_name,
                                      const std::string& task_name);

/// The value a (benign) task writes to `object`, as a function of its
/// seed, the output object, its incarnation (loop visit count), and the
/// values it read, in read-set order.
[[nodiscard]] Value compute_output(std::uint64_t seed, wfspec::ObjectId object,
                                   int incarnation,
                                   const std::vector<Value>& read_values);

/// Attacker corruption: a deterministic involution (corrupt(corrupt(v))
/// == v) that never fixes a value.
[[nodiscard]] Value corrupt(Value v);

/// Branch choice from the selector object's value: an index in
/// [0, n_choices). n_choices must be >= 1.
[[nodiscard]] std::size_t choose_branch(Value selector_value, std::size_t n_choices);

}  // namespace selfheal::engine
