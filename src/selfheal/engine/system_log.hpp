// The system log (Section II.A): the committed-order sequence of task
// instances, across all workflows processed by the system. Precedence
// t_i < t_j (Section II.B) is exactly log order. Recovery actions (undo
// and redo executions) are appended to the same log with their own kind,
// so the log remains the single authoritative execution record.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "selfheal/engine/versioned_store.hpp"
#include "selfheal/wfspec/workflow_spec.hpp"

namespace selfheal::engine {

using RunId = std::int32_t;
inline constexpr RunId kInvalidRun = -1;

enum class ActionKind {
  kNormal,     // original execution of a workflow task
  kMalicious,  // original execution, corrupted by the attacker
  kUndo,       // recovery: version-restore of a prior instance's writes
  kRedo,       // recovery: re-execution of a prior instance
  kFresh,      // recovery: first execution of a task that joined the path
  kRepair,     // recovery: final masked-write reconciliation (see scheduler)
};

[[nodiscard]] const char* to_string(ActionKind kind);

/// One committed execution (or recovery action) in the system log.
struct TaskInstance {
  InstanceId id = kInvalidInstance;  // == position in the log
  RunId run = kInvalidRun;
  wfspec::TaskId task = wfspec::kInvalidTask;
  int incarnation = 1;  // visit count for loops: t^1, t^2, ...
  ActionKind kind = ActionKind::kNormal;
  SeqNo seq = 0;  // commit sequence (== id; kept separate for clarity)
  /// The entry's position in the LOGICAL schedule: originals get their
  /// own seq; a redo inherits its target's slot; a fresh execution gets
  /// the slot it consumed (assigned by the recovery scheduler). The
  /// effective view below orders entries by this slot, which is what
  /// precedence (Section II.B) means once recovery has rewritten parts
  /// of the execution.
  SeqNo logical_slot = 0;

  std::vector<wfspec::ObjectId> read_objects;
  std::vector<Value> read_values;
  std::vector<wfspec::ObjectId> written_objects;
  std::vector<Value> written_values;

  /// For branch tasks: the successor chosen by this execution.
  std::optional<wfspec::TaskId> chosen_successor;
  /// For kUndo / kRedo: the original instance being undone / redone.
  InstanceId target = kInvalidInstance;

  [[nodiscard]] bool is_original() const noexcept {
    return kind == ActionKind::kNormal || kind == ActionKind::kMalicious;
  }
  [[nodiscard]] bool is_recovery() const noexcept { return !is_original(); }
};

class SystemLog {
 public:
  /// Appends an entry; fills in id and seq. Returns the instance id.
  InstanceId append(TaskInstance entry);

  [[nodiscard]] std::size_t size() const noexcept { return entries_.size(); }
  [[nodiscard]] const TaskInstance& entry(InstanceId id) const;
  [[nodiscard]] const std::vector<TaskInstance>& entries() const noexcept {
    return entries_;
  }

  /// The trace of a run (Section II.A): its original-execution instances
  /// in commit order (recovery actions excluded).
  [[nodiscard]] std::vector<InstanceId> trace(RunId run) const;

  /// succ(t_i): instances after `instance` in the same run's trace.
  [[nodiscard]] std::vector<InstanceId> trace_successors(InstanceId instance) const;

  /// The original-execution instance of (run, task, incarnation), if any.
  [[nodiscard]] std::optional<InstanceId> find_original(RunId run, wfspec::TaskId task,
                                                        int incarnation) const;

  /// All original-execution instances, in commit order.
  [[nodiscard]] std::vector<InstanceId> originals() const;

  /// The EFFECTIVE execution: for each (run, task, incarnation) the
  /// latest execution entry (normal/malicious/redo/fresh), excluding
  /// triples whose latest state is undone (an undo entry committed after
  /// the latest execution). Sorted by logical_slot (ties by id). Before
  /// any recovery this equals originals(). Dependence analysis for later
  /// recovery rounds runs over this view.
  [[nodiscard]] std::vector<InstanceId> effective() const;

  /// Latest execution entry of (run, task, incarnation) -- normal,
  /// malicious, redo or fresh -- whether or not currently undone. O(1):
  /// answered from the triple index maintained on append.
  [[nodiscard]] std::optional<InstanceId> find_latest_execution(
      RunId run, wfspec::TaskId task, int incarnation) const;

  /// True iff the triple's latest execution is superseded by an undo.
  /// O(1) via the triple index.
  [[nodiscard]] bool currently_undone(InstanceId execution) const;

  /// True iff `execution` is the entry representing its (run, task,
  /// incarnation) triple in the effective view: an execution kind, not
  /// undone, and not superseded by a later execution. O(1); the
  /// streaming dependence index uses this to diff effective membership
  /// without replaying the log.
  [[nodiscard]] bool is_live_execution(InstanceId execution) const;

  /// Human-readable rendering, e.g. "t1 t7 t2 ..." with kind markers;
  /// names resolved via `spec_of(run)`.
  [[nodiscard]] std::string render(
      const std::vector<const wfspec::WorkflowSpec*>& spec_of_run) const;

  /// The next logical slot a fresh original commit would receive.
  [[nodiscard]] SeqNo next_slot() const noexcept { return next_slot_; }

  /// Number of recovery entries (undo/redo/fresh/repair) committed so
  /// far. Monotone; the incremental dependence analyzer compares it
  /// across refreshes to detect that a recovery round rewrote the
  /// effective schedule (its invalidation rule).
  [[nodiscard]] std::size_t recovery_entry_count() const noexcept {
    return recovery_entries_;
  }

  /// Appends a persisted entry verbatim (id, seq, slot already set).
  /// The entry must be the next one in order; throws otherwise.
  void restore_entry(TaskInstance entry);

 private:
  struct TripleKey {
    RunId run = kInvalidRun;
    wfspec::TaskId task = wfspec::kInvalidTask;
    int incarnation = 1;
    bool operator==(const TripleKey&) const = default;
  };
  struct TripleKeyHash {
    [[nodiscard]] std::size_t operator()(const TripleKey& k) const noexcept {
      std::uint64_t h = static_cast<std::uint64_t>(static_cast<std::uint32_t>(k.run));
      h = h * 0x9E3779B97F4A7C15ULL ^
          static_cast<std::uint64_t>(static_cast<std::uint32_t>(k.task));
      h = h * 0x9E3779B97F4A7C15ULL ^
          static_cast<std::uint64_t>(static_cast<std::uint32_t>(k.incarnation));
      return static_cast<std::size_t>(h ^ (h >> 32));
    }
  };
  /// Latest state of one (run, task, incarnation): the newest execution
  /// entry and the newest DECISIVE entry (execution or undo -- whichever
  /// committed last decides whether the triple is live). Repairs carry
  /// no identity and are never indexed.
  struct TripleState {
    InstanceId latest_execution = kInvalidInstance;
    InstanceId latest_decisive = kInvalidInstance;
    bool decisive_is_undo = false;
  };

  void index_entry(const TaskInstance& entry);
  [[nodiscard]] const TripleState* triple_state(RunId run, wfspec::TaskId task,
                                                int incarnation) const;

  std::vector<TaskInstance> entries_;
  SeqNo next_slot_ = 1;
  std::size_t recovery_entries_ = 0;
  /// O(1) lookups for find_latest_execution / currently_undone /
  /// is_live_execution and an O(triples) effective() sweep -- the alert
  /// hot path must not rescan the log.
  std::unordered_map<TripleKey, TripleState, TripleKeyHash> triple_index_;
};

}  // namespace selfheal::engine
