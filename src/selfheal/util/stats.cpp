#include "selfheal/util/stats.hpp"

#include <algorithm>
#include <cmath>
#include <sstream>

namespace selfheal::util {

double RunningStats::stddev() const noexcept { return std::sqrt(variance()); }

void RunningStats::merge(const RunningStats& other) noexcept {
  if (other.count_ == 0) return;
  if (count_ == 0) {
    *this = other;
    return;
  }
  const auto n1 = static_cast<double>(count_);
  const auto n2 = static_cast<double>(other.count_);
  const double delta = other.mean_ - mean_;
  const double n = n1 + n2;
  mean_ += delta * n2 / n;
  m2_ += other.m2_ + delta * delta * n1 * n2 / n;
  count_ += other.count_;
  sum_ += other.sum_;
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
}

Histogram::Histogram(double lo, double hi, std::size_t buckets)
    : lo_(lo), hi_(hi), bucket_width_((hi - lo) / static_cast<double>(buckets)),
      counts_(buckets, 0) {}

void Histogram::add(double x) noexcept {
  ++total_;
  if (x < lo_) {
    ++underflow_;
    return;
  }
  if (x >= hi_) {
    ++overflow_;
    return;
  }
  auto idx = static_cast<std::size_t>((x - lo_) / bucket_width_);
  idx = std::min(idx, counts_.size() - 1);
  ++counts_[idx];
}

double Histogram::bucket_lo(std::size_t i) const noexcept {
  return lo_ + bucket_width_ * static_cast<double>(i);
}

double Histogram::quantile(double q) const noexcept {
  if (total_ == 0) return lo_;
  const double target = q * static_cast<double>(total_);
  double cumulative = static_cast<double>(underflow_);
  if (cumulative >= target && underflow_ > 0) return lo_;
  for (std::size_t i = 0; i < counts_.size(); ++i) {
    cumulative += static_cast<double>(counts_[i]);
    if (cumulative >= target) return bucket_lo(i) + bucket_width_ / 2.0;
  }
  return hi_;
}

std::string Histogram::render(std::size_t width) const {
  std::uint64_t peak = 1;
  for (auto c : counts_) peak = std::max(peak, c);
  std::ostringstream out;
  if (underflow_ > 0) out << "(-inf, " << lo_ << ") " << underflow_ << "\n";
  for (std::size_t i = 0; i < counts_.size(); ++i) {
    const auto bar = static_cast<std::size_t>(
        static_cast<double>(counts_[i]) / static_cast<double>(peak) *
        static_cast<double>(width));
    out << "[" << bucket_lo(i) << ", " << bucket_lo(i) + bucket_width_ << ") "
        << std::string(bar, '#') << " " << counts_[i] << "\n";
  }
  if (overflow_ > 0) out << "[" << hi_ << ", +inf) " << overflow_ << "\n";
  return out.str();
}

void TimeWeighted::observe(double time, double value) noexcept {
  if (!started_) {
    started_ = true;
    start_time_ = time;
  } else {
    weighted_sum_ += value_ * (time - last_time_);
  }
  last_time_ = time;
  value_ = value;
}

double TimeWeighted::average(double end_time) const noexcept {
  if (!started_ || end_time <= start_time_) return 0.0;
  const double total = weighted_sum_ + value_ * (end_time - last_time_);
  return total / (end_time - start_time_);
}

}  // namespace selfheal::util
