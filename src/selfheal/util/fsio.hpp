// Crash-safe file primitives.
//
// Plain `ofstream << content` leaves a half-written file if the process
// dies mid-write (or the disk fills): the target is truncated first and
// filled after. Every durable artifact in this repository (sessions,
// bench --json-out, obs metrics/trace files) instead goes through
// write_file_atomic: write a temp file in the same directory, flush and
// fsync it, then rename(2) over the target. POSIX rename is atomic, so
// at every byte boundary the target is either the complete old content
// or the complete new content -- never a hybrid.
#pragma once

#include <string>
#include <string_view>

namespace selfheal::util {

/// Atomically replaces `path` with `content` (temp + fsync + rename).
/// On failure the target is untouched, the temp file is removed, and a
/// std::runtime_error describes the failing step. Single-writer: the
/// temp name is derived from `path`, so two concurrent writers to the
/// same path race (as they would on the target itself).
void write_file_atomic(const std::string& path, std::string_view content);

/// Reads a whole file into a string; throws std::runtime_error if the
/// file cannot be opened or read.
[[nodiscard]] std::string read_file(const std::string& path);

}  // namespace selfheal::util
