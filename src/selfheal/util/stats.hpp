// Streaming statistics and histograms used by the simulators and benches.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

namespace selfheal::util {

/// Welford's online algorithm: numerically stable running mean/variance.
class RunningStats {
 public:
  void add(double x) noexcept {
    ++count_;
    const double delta = x - mean_;
    mean_ += delta / static_cast<double>(count_);
    m2_ += delta * (x - mean_);
    if (x < min_ || count_ == 1) min_ = x;
    if (x > max_ || count_ == 1) max_ = x;
    sum_ += x;
  }

  [[nodiscard]] std::size_t count() const noexcept { return count_; }
  [[nodiscard]] double mean() const noexcept { return mean_; }
  [[nodiscard]] double sum() const noexcept { return sum_; }
  [[nodiscard]] double variance() const noexcept {
    return count_ > 1 ? m2_ / static_cast<double>(count_ - 1) : 0.0;
  }
  [[nodiscard]] double stddev() const noexcept;
  [[nodiscard]] double min() const noexcept { return min_; }
  [[nodiscard]] double max() const noexcept { return max_; }

  void merge(const RunningStats& other) noexcept;

 private:
  std::size_t count_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double sum_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

/// Fixed-width histogram over [lo, hi); out-of-range samples are counted
/// explicitly as underflow (x < lo) or overflow (x >= hi) rather than
/// clamped into the edge buckets, so the range misconfiguration that
/// would otherwise silently skew the edge buckets is observable.
class Histogram {
 public:
  Histogram(double lo, double hi, std::size_t buckets);

  void add(double x) noexcept;

  [[nodiscard]] std::size_t bucket_count() const noexcept { return counts_.size(); }
  [[nodiscard]] std::uint64_t bucket(std::size_t i) const { return counts_.at(i); }
  /// Every observation ever added, including under/overflow.
  [[nodiscard]] std::uint64_t total() const noexcept { return total_; }
  [[nodiscard]] std::uint64_t underflow() const noexcept { return underflow_; }
  [[nodiscard]] std::uint64_t overflow() const noexcept { return overflow_; }
  [[nodiscard]] std::uint64_t in_range() const noexcept {
    return total_ - underflow_ - overflow_;
  }
  [[nodiscard]] double lo() const noexcept { return lo_; }
  [[nodiscard]] double hi() const noexcept { return hi_; }
  [[nodiscard]] double bucket_lo(std::size_t i) const noexcept;
  /// Approximate quantile (q in [0,1]) from bucket midpoints; underflow
  /// mass reports lo and overflow mass reports hi.
  [[nodiscard]] double quantile(double q) const noexcept;

  /// Renders an ASCII bar chart, one line per bucket (plus under/overflow
  /// lines when nonzero).
  [[nodiscard]] std::string render(std::size_t width = 40) const;

 private:
  double lo_;
  double hi_;
  double bucket_width_;
  std::vector<std::uint64_t> counts_;
  std::uint64_t total_ = 0;
  std::uint64_t underflow_ = 0;
  std::uint64_t overflow_ = 0;
};

/// Time-weighted average of a piecewise-constant signal (queue lengths,
/// state occupancy). Feed (timestamp, new_value) transitions in order.
class TimeWeighted {
 public:
  void observe(double time, double value) noexcept;
  /// Closes the observation window at `time` and returns the average.
  [[nodiscard]] double average(double end_time) const noexcept;
  [[nodiscard]] double current() const noexcept { return value_; }

 private:
  bool started_ = false;
  double last_time_ = 0.0;
  double value_ = 0.0;
  double weighted_sum_ = 0.0;
  double start_time_ = 0.0;
};

}  // namespace selfheal::util
