// Deterministic pseudo-random number generation for simulations.
//
// We implement xoshiro256** (Blackman & Vigna) seeded via SplitMix64 so
// that every simulation in this repository is reproducible from a single
// 64-bit seed, independent of the standard library implementation.
#pragma once

#include <cstdint>
#include <limits>
#include <vector>

namespace selfheal::util {

/// SplitMix64: used to expand a single seed into xoshiro state.
/// Also useful directly as a cheap, well-mixed hash of a 64-bit value.
[[nodiscard]] constexpr std::uint64_t splitmix64(std::uint64_t x) noexcept {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

/// Mixes two 64-bit values into one; used for deterministic task semantics.
[[nodiscard]] constexpr std::uint64_t mix64(std::uint64_t a, std::uint64_t b) noexcept {
  return splitmix64(a ^ splitmix64(b));
}

/// xoshiro256** generator. Satisfies std::uniform_random_bit_generator.
class Rng {
 public:
  using result_type = std::uint64_t;

  explicit Rng(std::uint64_t seed = 0x5eed5eed5eed5eedULL) noexcept { reseed(seed); }

  void reseed(std::uint64_t seed) noexcept {
    std::uint64_t sm = seed;
    for (auto& word : state_) {
      sm += 0x9e3779b97f4a7c15ULL;
      word = splitmix64(sm);
    }
  }

  static constexpr result_type min() noexcept { return 0; }
  static constexpr result_type max() noexcept {
    return std::numeric_limits<result_type>::max();
  }

  result_type operator()() noexcept {
    const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
    const std::uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);
    return result;
  }

  /// Uniform double in [0, 1).
  [[nodiscard]] double uniform() noexcept {
    return static_cast<double>((*this)() >> 11) * 0x1.0p-53;
  }

  /// Uniform double in [lo, hi).
  [[nodiscard]] double uniform(double lo, double hi) noexcept {
    return lo + (hi - lo) * uniform();
  }

  /// Uniform integer in [0, n). Requires n > 0.
  [[nodiscard]] std::uint64_t below(std::uint64_t n) noexcept {
    // Lemire's method with rejection to remove modulo bias.
    std::uint64_t x = (*this)();
    __uint128_t m = static_cast<__uint128_t>(x) * n;
    auto lo = static_cast<std::uint64_t>(m);
    if (lo < n) {
      const std::uint64_t threshold = -n % n;
      while (lo < threshold) {
        x = (*this)();
        m = static_cast<__uint128_t>(x) * n;
        lo = static_cast<std::uint64_t>(m);
      }
    }
    return static_cast<std::uint64_t>(m >> 64);
  }

  /// Uniform integer in [lo, hi] inclusive. Requires lo <= hi.
  [[nodiscard]] std::int64_t between(std::int64_t lo, std::int64_t hi) noexcept {
    return lo + static_cast<std::int64_t>(
                    below(static_cast<std::uint64_t>(hi - lo) + 1));
  }

  /// Bernoulli trial with success probability p.
  [[nodiscard]] bool chance(double p) noexcept { return uniform() < p; }

  /// Exponentially distributed variate with rate `rate` (mean 1/rate).
  [[nodiscard]] double exponential(double rate) noexcept;

  /// Poisson-distributed count with the given mean (Knuth / PTRS hybrid).
  [[nodiscard]] std::uint64_t poisson(double mean) noexcept;

  /// Picks a uniformly random element index from a non-empty container size.
  template <typename Container>
  [[nodiscard]] std::size_t index_into(const Container& c) noexcept {
    return static_cast<std::size_t>(below(c.size()));
  }

  /// Fisher-Yates shuffle.
  template <typename T>
  void shuffle(std::vector<T>& v) noexcept {
    for (std::size_t i = v.size(); i > 1; --i) {
      using std::swap;
      swap(v[i - 1], v[static_cast<std::size_t>(below(i))]);
    }
  }

 private:
  static constexpr std::uint64_t rotl(std::uint64_t x, int k) noexcept {
    return (x << k) | (x >> (64 - k));
  }

  std::uint64_t state_[4]{};
};

}  // namespace selfheal::util
