// Minimal leveled logger. The recovery controller narrates what it does
// at Debug level; benches and tests run at Warn to stay quiet.
#pragma once

#include <sstream>
#include <string>

namespace selfheal::util {

enum class LogLevel { Debug = 0, Info = 1, Warn = 2, Error = 3, Off = 4 };

/// Process-wide minimum level; messages below it are discarded.
void set_log_level(LogLevel level) noexcept;
[[nodiscard]] LogLevel log_level() noexcept;

void log_message(LogLevel level, const std::string& message);

namespace detail {
template <typename... Parts>
void log_join(LogLevel level, const Parts&... parts) {
  if (level < log_level()) return;
  std::ostringstream out;
  (out << ... << parts);
  log_message(level, out.str());
}
}  // namespace detail

template <typename... Parts>
void log_debug(const Parts&... parts) {
  detail::log_join(LogLevel::Debug, parts...);
}
template <typename... Parts>
void log_info(const Parts&... parts) {
  detail::log_join(LogLevel::Info, parts...);
}
template <typename... Parts>
void log_warn(const Parts&... parts) {
  detail::log_join(LogLevel::Warn, parts...);
}
template <typename... Parts>
void log_error(const Parts&... parts) {
  detail::log_join(LogLevel::Error, parts...);
}

}  // namespace selfheal::util
