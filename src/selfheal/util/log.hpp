// Minimal leveled logger. The recovery controller narrates what it does
// at Debug level; benches and tests run at Warn to stay quiet.
//
// Thread-safe: concurrent log_message calls never interleave within a
// line (each line is preformatted and emitted in one fwrite), and sink
// replacement is serialized against in-flight messages.
#pragma once

#include <functional>
#include <sstream>
#include <string>

namespace selfheal::util {

enum class LogLevel { Debug = 0, Info = 1, Warn = 2, Error = 3, Off = 4 };

/// Process-wide minimum level; messages below it are discarded.
void set_log_level(LogLevel level) noexcept;
[[nodiscard]] LogLevel log_level() noexcept;

/// Receives every emitted message (already level-filtered), e.g. the
/// obs layer's capture buffer or a test assertion hook.
using LogSink = std::function<void(LogLevel, const std::string&)>;

/// Replaces the output sink; nullptr restores the default (one
/// preformatted line per message to stderr). Returns the previous sink
/// (empty if the default was active) so callers can chain/restore.
LogSink set_log_sink(LogSink sink);

void log_message(LogLevel level, const std::string& message);

namespace detail {
template <typename... Parts>
void log_join(LogLevel level, const Parts&... parts) {
  if (level < log_level()) return;
  std::ostringstream out;
  (out << ... << parts);
  log_message(level, out.str());
}
}  // namespace detail

template <typename... Parts>
void log_debug(const Parts&... parts) {
  detail::log_join(LogLevel::Debug, parts...);
}
template <typename... Parts>
void log_info(const Parts&... parts) {
  detail::log_join(LogLevel::Info, parts...);
}
template <typename... Parts>
void log_warn(const Parts&... parts) {
  detail::log_join(LogLevel::Warn, parts...);
}
template <typename... Parts>
void log_error(const Parts&... parts) {
  detail::log_join(LogLevel::Error, parts...);
}

}  // namespace selfheal::util
