#include "selfheal/util/fsio.hpp"

#include <fcntl.h>
#include <unistd.h>

#include <cerrno>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <sstream>
#include <stdexcept>

namespace selfheal::util {

namespace {

[[noreturn]] void fail(const std::string& step, const std::string& path) {
  throw std::runtime_error("write_file_atomic: " + step + " failed for " +
                           path + ": " + std::strerror(errno));
}

}  // namespace

void write_file_atomic(const std::string& path, std::string_view content) {
  const std::string tmp = path + ".tmp";
  const int fd = ::open(tmp.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0644);
  if (fd < 0) fail("open", tmp);

  std::size_t written = 0;
  while (written < content.size()) {
    const ssize_t n =
        ::write(fd, content.data() + written, content.size() - written);
    if (n < 0) {
      if (errno == EINTR) continue;
      ::close(fd);
      ::unlink(tmp.c_str());
      fail("write", tmp);
    }
    written += static_cast<std::size_t>(n);
  }

  // The fsync before rename is the crash-consistency linchpin: without
  // it the rename can become durable before the data, and a crash
  // exposes a complete-looking file full of garbage.
  if (::fsync(fd) != 0) {
    ::close(fd);
    ::unlink(tmp.c_str());
    fail("fsync", tmp);
  }
  if (::close(fd) != 0) {
    ::unlink(tmp.c_str());
    fail("close", tmp);
  }
  if (std::rename(tmp.c_str(), path.c_str()) != 0) {
    ::unlink(tmp.c_str());
    fail("rename", path);
  }

  // Durable directory entry: best-effort fsync of the parent directory
  // (failure here means the rename may be lost on power loss, but the
  // target is still never a hybrid -- don't fail the write over it).
  const auto slash = path.find_last_of('/');
  const std::string dir = slash == std::string::npos ? "." : path.substr(0, slash);
  const int dfd = ::open(dir.c_str(), O_RDONLY | O_DIRECTORY);
  if (dfd >= 0) {
    (void)::fsync(dfd);
    ::close(dfd);
  }
}

std::string read_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) throw std::runtime_error("read_file: cannot open " + path);
  std::ostringstream buffer;
  buffer << in.rdbuf();
  if (in.bad()) throw std::runtime_error("read_file: read error on " + path);
  return buffer.str();
}

}  // namespace selfheal::util
