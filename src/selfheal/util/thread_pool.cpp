#include "selfheal/util/thread_pool.hpp"

#include <algorithm>

namespace selfheal::util {

std::size_t ThreadPool::hardware_threads() {
  const unsigned n = std::thread::hardware_concurrency();
  return n == 0 ? 1 : static_cast<std::size_t>(n);
}

ThreadPool::ThreadPool(std::size_t threads) {
  if (threads == 0) threads = hardware_threads();
  // The caller participates in every job, so spawn threads - 1 workers.
  workers_.reserve(threads - 1);
  for (std::size_t i = 0; i + 1 < threads; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stopping_ = true;
  }
  work_ready_.notify_all();
  for (auto& w : workers_) w.join();
}

void ThreadPool::run_indices() {
  // Caller holds mu_ on entry and exit; released around each body call.
  std::unique_lock<std::mutex> lock(mu_, std::adopt_lock);
  while (job_next_ < job_count_) {
    const std::size_t begin = job_next_;
    const std::size_t end = std::min(job_count_, begin + job_grain_);
    job_next_ = end;
    ++job_inflight_;
    lock.unlock();
    std::exception_ptr error;
    try {
      for (std::size_t index = begin; index < end; ++index) (*job_body_)(index);
    } catch (...) {
      error = std::current_exception();
    }
    lock.lock();
    --job_inflight_;
    if (error) {
      if (!job_error_) job_error_ = error;
      job_next_ = job_count_;  // abandon the remaining indices
    }
  }
  if (job_inflight_ == 0) work_done_.notify_all();
  lock.release();  // leave mu_ held for the caller
}

void ThreadPool::worker_loop() {
  std::unique_lock<std::mutex> lock(mu_);
  std::uint64_t seen = 0;
  while (true) {
    work_ready_.wait(lock, [&] { return stopping_ || generation_ != seen; });
    if (stopping_) return;
    seen = generation_;
    if (job_body_ != nullptr && job_next_ < job_count_) {
      lock.release();
      run_indices();
      lock = std::unique_lock<std::mutex>(mu_, std::adopt_lock);
    }
  }
}

void ThreadPool::for_index(std::size_t count, const std::function<void(std::size_t)>& body) {
  for_index_grained(count, 1, body);
}

void ThreadPool::for_index_grained(std::size_t count, std::size_t grain,
                                   const std::function<void(std::size_t)>& body) {
  if (count == 0) return;
  if (workers_.empty() || count == 1) {
    for (std::size_t i = 0; i < count; ++i) body(i);
    return;
  }
  std::unique_lock<std::mutex> lock(mu_);
  job_body_ = &body;
  job_count_ = count;
  job_next_ = 0;
  job_grain_ = grain == 0 ? 1 : grain;
  job_inflight_ = 0;
  job_error_ = nullptr;
  ++generation_;
  work_ready_.notify_all();

  lock.release();
  run_indices();
  lock = std::unique_lock<std::mutex>(mu_, std::adopt_lock);

  work_done_.wait(lock, [&] { return job_next_ >= job_count_ && job_inflight_ == 0; });
  job_body_ = nullptr;
  std::exception_ptr error = job_error_;
  job_error_ = nullptr;
  lock.unlock();
  if (error) std::rethrow_exception(error);
}

void parallel_for_index(std::size_t threads, std::size_t count,
                        const std::function<void(std::size_t)>& body) {
  if (threads == 0) threads = ThreadPool::hardware_threads();
  if (threads <= 1 || count <= 1) {
    for (std::size_t i = 0; i < count; ++i) body(i);
    return;
  }
  ThreadPool pool(std::min(threads, count));
  pool.for_index(count, body);
}

}  // namespace selfheal::util
