// Minimal fixed-size thread pool for the embarrassingly-parallel sweep
// loops in the figure benches and the chaos campaign.
//
// Usage contract for determinism: workers claim loop indices from an
// atomic cursor and write results ONLY into caller-owned, per-index
// slots. Rendering (tables, JSON) happens after for_index returns, in
// index order, so output is byte-identical for any thread count.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <exception>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace selfheal::util {

class ThreadPool {
 public:
  /// Spawns `threads` workers; 0 means hardware_threads(). A pool of 1
  /// spawns no workers at all -- for_index then runs inline, which keeps
  /// single-threaded runs trivially deterministic and debuggable.
  explicit ThreadPool(std::size_t threads = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Total executors including the calling thread (>= 1).
  [[nodiscard]] std::size_t thread_count() const noexcept { return workers_.size() + 1; }

  /// Runs body(i) for every i in [0, count), blocking until all are
  /// done. The caller participates, so a 1-thread pool is an inline
  /// loop. The first exception thrown by any body is rethrown here
  /// (remaining indices are abandoned). Not reentrant.
  void for_index(std::size_t count, const std::function<void(std::size_t)>& body);

  /// for_index with chunked claiming: workers grab `grain` consecutive
  /// indices at a time instead of one, trading scheduling overhead for
  /// load balance. grain <= 1 behaves exactly like for_index.
  void for_index_grained(std::size_t count, std::size_t grain,
                         const std::function<void(std::size_t)>& body);

  [[nodiscard]] static std::size_t hardware_threads();

 private:
  void worker_loop();
  /// Claims indices until the job is drained; returns when none remain.
  void run_indices();

  std::vector<std::thread> workers_;

  std::mutex mu_;
  std::condition_variable work_ready_;
  std::condition_variable work_done_;
  bool stopping_ = false;
  std::uint64_t generation_ = 0;      // bumped per for_index call
  std::size_t job_count_ = 0;         // total indices in the current job
  std::size_t job_next_ = 0;          // next unclaimed index
  std::size_t job_grain_ = 1;         // indices claimed per grab
  std::size_t job_inflight_ = 0;      // claimed but not yet finished
  const std::function<void(std::size_t)>* job_body_ = nullptr;
  std::exception_ptr job_error_;
};

/// One-shot helper: runs body(i) for i in [0, count) across `threads`
/// executors (<= 1 means inline, 0 means hardware_threads()).
void parallel_for_index(std::size_t threads, std::size_t count,
                        const std::function<void(std::size_t)>& body);

}  // namespace selfheal::util
