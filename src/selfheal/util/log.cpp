#include "selfheal/util/log.hpp"

#include <atomic>
#include <cstdio>
#include <mutex>
#include <utility>

namespace selfheal::util {

namespace {
std::atomic<LogLevel> g_level{LogLevel::Warn};

// Guards the sink pointer AND serializes sink invocations, so a sink
// swap cannot race an in-flight message and custom sinks need no
// internal locking of their own.
std::mutex g_sink_mutex;
LogSink g_sink;  // empty = default stderr sink

const char* level_name(LogLevel level) {
  switch (level) {
    case LogLevel::Debug: return "DEBUG";
    case LogLevel::Info: return "INFO ";
    case LogLevel::Warn: return "WARN ";
    case LogLevel::Error: return "ERROR";
    case LogLevel::Off: return "OFF  ";
  }
  return "?";
}
}  // namespace

void set_log_level(LogLevel level) noexcept { g_level.store(level); }

LogLevel log_level() noexcept { return g_level.load(); }

LogSink set_log_sink(LogSink sink) {
  std::lock_guard<std::mutex> lock(g_sink_mutex);
  LogSink previous = std::move(g_sink);
  g_sink = std::move(sink);
  return previous;
}

void log_message(LogLevel level, const std::string& message) {
  if (level < log_level()) return;
  std::lock_guard<std::mutex> lock(g_sink_mutex);
  if (g_sink) {
    g_sink(level, message);
    return;
  }
  // One preformatted line, one fwrite: lines from concurrent threads
  // never interleave even if stderr is shared with other writers.
  std::string line;
  line.reserve(message.size() + 10);
  line.append("[").append(level_name(level)).append("] ").append(message).append("\n");
  std::fwrite(line.data(), 1, line.size(), stderr);
}

}  // namespace selfheal::util
