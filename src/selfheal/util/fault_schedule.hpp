// Stateless fault schedules: deterministic draws keyed by operation
// identity instead of generator state.
//
// Every fault plan in this repository answers the same question -- "does
// fault F fire on operation O?" -- as a pure hash of (seed, salt, O), so
// enabling one fault class, reordering unrelated operations, or running
// the same plan on another thread never shifts another class's
// decisions. storage::StorageFaultInjector (media damage per write op),
// chaos::TaskFaultPlan (task faults per (run, task, incarnation)), and
// replication::LossyTransport (message fates per send) all draw from
// this one helper; the salt separates the independent decision streams
// a single plan makes about the same operation.
#pragma once

#include <cstdint>

#include "selfheal/util/rng.hpp"

namespace selfheal::util {

/// Uniform double in [0, 1) from a well-mixed hash -- the same mantissa
/// trick Rng::uniform() uses, applied to a stateless mix.
[[nodiscard]] constexpr double hash_uniform(std::uint64_t h) noexcept {
  return static_cast<double>(h >> 11) * 0x1.0p-53;
}

/// The schedule's key: one well-mixed word per (stream, op) pair.
[[nodiscard]] constexpr std::uint64_t schedule_key(std::uint64_t stream,
                                                   std::uint64_t op) noexcept {
  return splitmix64(mix64(stream, op));
}

/// Uniform double in [0, 1) for operation `op` of decision stream
/// `stream` (conventionally seed ^ salt).
[[nodiscard]] constexpr double schedule_uniform(std::uint64_t stream,
                                                std::uint64_t op) noexcept {
  return hash_uniform(schedule_key(stream, op));
}

/// Deterministic index in [0, n) for operation `op` of `stream`
/// (position of a tear, a bit to flip, a delay bucket). n == 0 yields 0.
[[nodiscard]] constexpr std::uint64_t schedule_index(std::uint64_t stream,
                                                     std::uint64_t op,
                                                     std::uint64_t n) noexcept {
  return n == 0 ? 0 : schedule_key(stream, op) % n;
}

/// Subtractive multi-way draw over one uniform sample: at most one of a
/// cascade of mutually exclusive outcomes fires, each with its nominal
/// rate, and adding an outcome never changes which earlier outcome a
/// given sample selects.
class ScheduleDraw {
 public:
  explicit constexpr ScheduleDraw(double u) noexcept : u_(u) {}

  /// True if this outcome (probability `rate`) fires; otherwise the
  /// sample is shifted past it so later outcomes keep their own rates.
  constexpr bool fires(double rate) noexcept {
    if (u_ < rate) return true;
    u_ -= rate;
    return false;
  }

 private:
  double u_;
};

}  // namespace selfheal::util
