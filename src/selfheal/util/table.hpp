// Column-aligned plain-text tables. Every bench binary in bench/ prints
// its figure/table series through this so outputs are uniform and easy
// to diff against EXPERIMENTS.md.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

namespace selfheal::util {

/// Builds a fixed-schema table row by row, then renders it aligned.
class Table {
 public:
  explicit Table(std::vector<std::string> headers);

  /// Appends a row; must have exactly as many cells as there are headers.
  void add_row(std::vector<std::string> cells);

  /// Convenience: formats arithmetic cells with `precision` digits.
  template <typename... Cells>
  void add(const Cells&... cells) {
    std::vector<std::string> row;
    row.reserve(sizeof...(cells));
    (row.push_back(format_cell(cells)), ...);
    add_row(std::move(row));
  }

  [[nodiscard]] std::size_t row_count() const noexcept { return rows_.size(); }

  /// Renders with a header rule; optionally prefix every line (e.g. "# ").
  [[nodiscard]] std::string render(const std::string& line_prefix = "") const;

  /// Renders as CSV (RFC-4180 quoting where needed) -- plot-ready output
  /// for the figure benches.
  [[nodiscard]] std::string render_csv() const;

  /// Appends the CSV rendering to `path`, prefixed by a "# title" line.
  /// Errors are reported on stderr, not thrown (benches keep running).
  void append_csv(const std::string& path, const std::string& title) const;

  void set_precision(int digits) noexcept { precision_ = digits; }

 private:
  [[nodiscard]] std::string format_cell(const std::string& s) const { return s; }
  [[nodiscard]] std::string format_cell(const char* s) const { return s; }
  [[nodiscard]] std::string format_cell(double v) const;
  [[nodiscard]] std::string format_cell(int v) const { return std::to_string(v); }
  [[nodiscard]] std::string format_cell(long v) const { return std::to_string(v); }
  [[nodiscard]] std::string format_cell(unsigned v) const { return std::to_string(v); }
  [[nodiscard]] std::string format_cell(std::size_t v) const { return std::to_string(v); }

  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
  int precision_ = 6;
};

/// Section banner used by the figure benches ("== Figure 4(a) ... ==").
[[nodiscard]] std::string banner(const std::string& title);

}  // namespace selfheal::util
