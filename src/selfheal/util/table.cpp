#include "selfheal/util/table.hpp"

#include <algorithm>
#include <cstdio>
#include <fstream>
#include <iomanip>
#include <sstream>
#include <stdexcept>

namespace selfheal::util {

Table::Table(std::vector<std::string> headers) : headers_(std::move(headers)) {}

void Table::add_row(std::vector<std::string> cells) {
  if (cells.size() != headers_.size()) {
    throw std::invalid_argument("Table row has " + std::to_string(cells.size()) +
                                " cells, expected " + std::to_string(headers_.size()));
  }
  rows_.push_back(std::move(cells));
}

std::string Table::format_cell(double v) const {
  std::ostringstream out;
  out << std::setprecision(precision_) << v;
  return out.str();
}

std::string Table::render(const std::string& line_prefix) const {
  std::vector<std::size_t> widths(headers_.size());
  for (std::size_t c = 0; c < headers_.size(); ++c) widths[c] = headers_[c].size();
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }

  std::ostringstream out;
  auto emit_row = [&](const std::vector<std::string>& row) {
    out << line_prefix;
    for (std::size_t c = 0; c < row.size(); ++c) {
      out << std::left << std::setw(static_cast<int>(widths[c])) << row[c];
      if (c + 1 < row.size()) out << "  ";
    }
    out << "\n";
  };

  emit_row(headers_);
  out << line_prefix;
  for (std::size_t c = 0; c < widths.size(); ++c) {
    out << std::string(widths[c], '-');
    if (c + 1 < widths.size()) out << "  ";
  }
  out << "\n";
  for (const auto& row : rows_) emit_row(row);
  return out.str();
}

std::string Table::render_csv() const {
  auto quote = [](const std::string& cell) {
    if (cell.find_first_of(",\"\n") == std::string::npos) return cell;
    std::string quoted = "\"";
    for (const char c : cell) {
      if (c == '"') quoted += '"';
      quoted += c;
    }
    quoted += '"';
    return quoted;
  };
  std::ostringstream out;
  auto emit = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      out << quote(row[c]);
      if (c + 1 < row.size()) out << ",";
    }
    out << "\n";
  };
  emit(headers_);
  for (const auto& row : rows_) emit(row);
  return out.str();
}

void Table::append_csv(const std::string& path, const std::string& title) const {
  std::ofstream out(path, std::ios::app);
  if (!out) {
    std::fprintf(stderr, "Table::append_csv: cannot open %s\n", path.c_str());
    return;
  }
  out << "# " << title << "\n" << render_csv() << "\n";
}

std::string banner(const std::string& title) {
  return "\n== " + title + " ==\n";
}

}  // namespace selfheal::util
