#include "selfheal/util/rng.hpp"

#include <cmath>

namespace selfheal::util {

double Rng::exponential(double rate) noexcept {
  // Inverse CDF; guard against log(0).
  double u = uniform();
  while (u <= 0.0) u = uniform();
  return -std::log(u) / rate;
}

std::uint64_t Rng::poisson(double mean) noexcept {
  if (mean <= 0.0) return 0;
  if (mean < 30.0) {
    // Knuth's multiplication method.
    const double limit = std::exp(-mean);
    double product = uniform();
    std::uint64_t count = 0;
    while (product > limit) {
      ++count;
      product *= uniform();
    }
    return count;
  }
  // Normal approximation with continuity correction is adequate for the
  // large-mean regime used by the workload generators.
  const double u1 = uniform();
  const double u2 = uniform();
  const double z =
      std::sqrt(-2.0 * std::log(u1 <= 0 ? 1e-300 : u1)) * std::cos(6.283185307179586 * u2);
  const double value = mean + std::sqrt(mean) * z + 0.5;
  return value < 0 ? 0 : static_cast<std::uint64_t>(value);
}

}  // namespace selfheal::util
