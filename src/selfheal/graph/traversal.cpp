#include "selfheal/graph/traversal.hpp"

#include <deque>
#include <functional>

namespace selfheal::graph {

namespace {
std::vector<bool> bfs(const Digraph& g, NodeId start, bool forward) {
  std::vector<bool> seen(g.node_count(), false);
  if (!g.valid(start)) return seen;
  std::deque<NodeId> queue{start};
  seen[static_cast<std::size_t>(start)] = true;
  while (!queue.empty()) {
    const NodeId n = queue.front();
    queue.pop_front();
    const auto& next = forward ? g.successors(n) : g.predecessors(n);
    for (NodeId m : next) {
      if (!seen[static_cast<std::size_t>(m)]) {
        seen[static_cast<std::size_t>(m)] = true;
        queue.push_back(m);
      }
    }
  }
  return seen;
}
}  // namespace

std::vector<bool> reachable_from(const Digraph& g, NodeId start) {
  return bfs(g, start, /*forward=*/true);
}

std::vector<bool> reaching(const Digraph& g, NodeId target) {
  return bfs(g, target, /*forward=*/false);
}

std::optional<std::vector<NodeId>> topological_order(const Digraph& g) {
  std::vector<std::size_t> in_deg(g.node_count());
  std::deque<NodeId> ready;
  for (std::size_t n = 0; n < g.node_count(); ++n) {
    in_deg[n] = g.in_degree(static_cast<NodeId>(n));
    if (in_deg[n] == 0) ready.push_back(static_cast<NodeId>(n));
  }
  std::vector<NodeId> order;
  order.reserve(g.node_count());
  while (!ready.empty()) {
    const NodeId n = ready.front();
    ready.pop_front();
    order.push_back(n);
    for (NodeId m : g.successors(n)) {
      if (--in_deg[static_cast<std::size_t>(m)] == 0) ready.push_back(m);
    }
  }
  if (order.size() != g.node_count()) return std::nullopt;
  return order;
}

bool has_cycle(const Digraph& g) { return !topological_order(g).has_value(); }

std::vector<std::vector<NodeId>> enumerate_paths(const Digraph& g, NodeId start,
                                                 std::size_t max_visits,
                                                 std::size_t max_paths) {
  std::vector<std::vector<NodeId>> paths;
  if (!g.valid(start)) return paths;
  std::vector<std::size_t> visits(g.node_count(), 0);
  std::vector<NodeId> current;

  std::function<void(NodeId)> walk = [&](NodeId n) {
    if (paths.size() >= max_paths) return;
    visits[static_cast<std::size_t>(n)]++;
    current.push_back(n);
    if (g.out_degree(n) == 0) {
      paths.push_back(current);
    } else {
      for (NodeId m : g.successors(n)) {
        if (visits[static_cast<std::size_t>(m)] < max_visits) walk(m);
      }
    }
    current.pop_back();
    visits[static_cast<std::size_t>(n)]--;
  };
  walk(start);
  return paths;
}

std::vector<std::vector<bool>> transitive_closure(const Digraph& g) {
  std::vector<std::vector<bool>> closure(g.node_count());
  for (std::size_t n = 0; n < g.node_count(); ++n) {
    auto seen = reachable_from(g, static_cast<NodeId>(n));
    // Reachability includes the start node; the closure relation is
    // "by one or more edges", so drop self unless on a cycle.
    bool self_cycle = false;
    for (NodeId m : g.successors(static_cast<NodeId>(n))) {
      if (static_cast<std::size_t>(m) == n) self_cycle = true;
    }
    if (!self_cycle) {
      // Self stays true only if n participates in a longer cycle.
      bool in_cycle = false;
      for (NodeId m : g.successors(static_cast<NodeId>(n))) {
        if (reachable_from(g, m)[n]) in_cycle = true;
      }
      seen[n] = in_cycle;
    }
    closure[n] = std::move(seen);
  }
  return closure;
}

}  // namespace selfheal::graph
