// Graphviz DOT export with per-node labels/attributes. Used by examples
// to render Figure 1-style damage-marking diagrams.
#pragma once

#include <functional>
#include <string>

#include "selfheal/graph/digraph.hpp"

namespace selfheal::graph {

struct DotNodeStyle {
  std::string label;       // empty -> node id
  std::string color;       // empty -> default
  std::string shape;       // empty -> default
  std::string annotation;  // appended to label in quotes, e.g. "B"/"A" marks
};

/// Renders the graph in DOT syntax. `style` may be null for plain output.
[[nodiscard]] std::string to_dot(
    const Digraph& g, const std::string& graph_name,
    const std::function<DotNodeStyle(NodeId)>& style = nullptr);

}  // namespace selfheal::graph
