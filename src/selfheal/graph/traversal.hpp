// Traversal algorithms over Digraph: reachability, topological sort,
// cycle detection, and simple-path enumeration (with a bound on repeats
// so cyclic workflows can still be enumerated).
#pragma once

#include <optional>
#include <vector>

#include "selfheal/graph/digraph.hpp"

namespace selfheal::graph {

/// All nodes reachable from `start` (including `start`).
[[nodiscard]] std::vector<bool> reachable_from(const Digraph& g, NodeId start);

/// All nodes that can reach `target` (including `target`).
[[nodiscard]] std::vector<bool> reaching(const Digraph& g, NodeId target);

/// Kahn topological order; std::nullopt if the graph has a cycle.
[[nodiscard]] std::optional<std::vector<NodeId>> topological_order(const Digraph& g);

[[nodiscard]] bool has_cycle(const Digraph& g);

/// Enumerates paths from `start` to any 0-outdegree node. Each node may
/// appear at most `max_visits` times per path (loop unrolling bound), and
/// at most `max_paths` paths are returned (guards exponential blowups).
[[nodiscard]] std::vector<std::vector<NodeId>> enumerate_paths(
    const Digraph& g, NodeId start, std::size_t max_visits = 1,
    std::size_t max_paths = 4096);

/// Boolean transitive closure: closure[a][b] == true iff b reachable from a
/// by one or more edges.
[[nodiscard]] std::vector<std::vector<bool>> transitive_closure(const Digraph& g);

}  // namespace selfheal::graph
