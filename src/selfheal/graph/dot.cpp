#include "selfheal/graph/dot.hpp"

#include <sstream>

namespace selfheal::graph {

std::string to_dot(const Digraph& g, const std::string& graph_name,
                   const std::function<DotNodeStyle(NodeId)>& style) {
  std::ostringstream out;
  out << "digraph \"" << graph_name << "\" {\n";
  out << "  rankdir=LR;\n";
  for (std::size_t n = 0; n < g.node_count(); ++n) {
    const auto id = static_cast<NodeId>(n);
    DotNodeStyle s;
    if (style) s = style(id);
    out << "  n" << n << " [label=\"";
    out << (s.label.empty() ? "n" + std::to_string(n) : s.label);
    if (!s.annotation.empty()) out << " (" << s.annotation << ")";
    out << "\"";
    if (!s.color.empty()) out << ", style=filled, fillcolor=\"" << s.color << "\"";
    if (!s.shape.empty()) out << ", shape=" << s.shape;
    out << "];\n";
  }
  for (std::size_t n = 0; n < g.node_count(); ++n) {
    for (NodeId m : g.successors(static_cast<NodeId>(n))) {
      out << "  n" << n << " -> n" << m << ";\n";
    }
  }
  out << "}\n";
  return out.str();
}

}  // namespace selfheal::graph
