// Dominator analysis.
//
// In the paper's control-dependence definition (Section II.D), a task t_j
// is control dependent on t_i when t_j is avoidable (missing from at least
// one execution path) and t_i is a branch node (out-degree > 1) on the
// path from the start node to t_j — i.e. a branch node that *dominates*
// t_j. Dominators give exactly "on every path from start to t_j".
#pragma once

#include <vector>

#include "selfheal/graph/digraph.hpp"

namespace selfheal::graph {

/// Immediate-dominator tree computed with the Cooper-Harvey-Kennedy
/// iterative algorithm. idom(start) == start; unreachable nodes get
/// kInvalidNode.
class Dominators {
 public:
  Dominators(const Digraph& g, NodeId start);

  [[nodiscard]] NodeId idom(NodeId n) const;

  /// True iff every path from the start node to `n` passes through `d`.
  /// dominates(n, n) is true for reachable n.
  [[nodiscard]] bool dominates(NodeId d, NodeId n) const;

  /// All strict dominators of n, walking up the dominator tree.
  [[nodiscard]] std::vector<NodeId> strict_dominators(NodeId n) const;

  [[nodiscard]] bool reachable(NodeId n) const;

 private:
  NodeId start_;
  std::vector<NodeId> idom_;
  std::vector<int> order_index_;  // reverse-postorder index, -1 if unreachable
};

}  // namespace selfheal::graph
