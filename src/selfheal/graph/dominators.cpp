#include "selfheal/graph/dominators.hpp"

#include <algorithm>
#include <functional>
#include <stdexcept>

namespace selfheal::graph {

Dominators::Dominators(const Digraph& g, NodeId start)
    : start_(start), idom_(g.node_count(), kInvalidNode),
      order_index_(g.node_count(), -1) {
  if (!g.valid(start)) throw std::out_of_range("Dominators: invalid start node");

  // Reverse postorder via iterative DFS.
  std::vector<NodeId> postorder;
  postorder.reserve(g.node_count());
  std::vector<char> state(g.node_count(), 0);  // 0=unseen 1=open 2=done
  std::vector<std::pair<NodeId, std::size_t>> stack;
  stack.emplace_back(start, 0);
  state[static_cast<std::size_t>(start)] = 1;
  while (!stack.empty()) {
    auto& [n, next] = stack.back();
    const auto& succ = g.successors(n);
    if (next < succ.size()) {
      const NodeId m = succ[next++];
      if (state[static_cast<std::size_t>(m)] == 0) {
        state[static_cast<std::size_t>(m)] = 1;
        stack.emplace_back(m, 0);
      }
    } else {
      state[static_cast<std::size_t>(n)] = 2;
      postorder.push_back(n);
      stack.pop_back();
    }
  }
  std::vector<NodeId> rpo(postorder.rbegin(), postorder.rend());
  for (std::size_t i = 0; i < rpo.size(); ++i) {
    order_index_[static_cast<std::size_t>(rpo[i])] = static_cast<int>(i);
  }

  idom_[static_cast<std::size_t>(start)] = start;
  auto intersect = [&](NodeId a, NodeId b) {
    while (a != b) {
      while (order_index_[static_cast<std::size_t>(a)] >
             order_index_[static_cast<std::size_t>(b)]) {
        a = idom_[static_cast<std::size_t>(a)];
      }
      while (order_index_[static_cast<std::size_t>(b)] >
             order_index_[static_cast<std::size_t>(a)]) {
        b = idom_[static_cast<std::size_t>(b)];
      }
    }
    return a;
  };

  bool changed = true;
  while (changed) {
    changed = false;
    for (NodeId n : rpo) {
      if (n == start) continue;
      NodeId new_idom = kInvalidNode;
      for (NodeId p : g.predecessors(n)) {
        if (order_index_[static_cast<std::size_t>(p)] < 0) continue;  // unreachable
        if (idom_[static_cast<std::size_t>(p)] == kInvalidNode) continue;
        new_idom = (new_idom == kInvalidNode) ? p : intersect(p, new_idom);
      }
      if (new_idom != kInvalidNode && idom_[static_cast<std::size_t>(n)] != new_idom) {
        idom_[static_cast<std::size_t>(n)] = new_idom;
        changed = true;
      }
    }
  }
}

NodeId Dominators::idom(NodeId n) const {
  return idom_.at(static_cast<std::size_t>(n));
}

bool Dominators::reachable(NodeId n) const {
  return order_index_.at(static_cast<std::size_t>(n)) >= 0;
}

bool Dominators::dominates(NodeId d, NodeId n) const {
  if (!reachable(n) || !reachable(d)) return false;
  NodeId cur = n;
  while (true) {
    if (cur == d) return true;
    if (cur == start_) return false;
    cur = idom_[static_cast<std::size_t>(cur)];
  }
}

std::vector<NodeId> Dominators::strict_dominators(NodeId n) const {
  std::vector<NodeId> result;
  if (!reachable(n)) return result;
  NodeId cur = n;
  while (cur != start_) {
    cur = idom_[static_cast<std::size_t>(cur)];
    result.push_back(cur);
  }
  return result;
}

}  // namespace selfheal::graph
