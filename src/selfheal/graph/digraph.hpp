// Generic directed graph over dense integer node ids.
//
// This is the substrate shared by workflow specifications (task graphs),
// recovery plans (partial-order DAGs), and dependency graphs. Nodes are
// 0..node_count()-1; payloads live in the client, keyed by node id.
#pragma once

#include <cstddef>
#include <cstdint>
#include <optional>
#include <vector>

namespace selfheal::graph {

using NodeId = std::int32_t;
inline constexpr NodeId kInvalidNode = -1;

class Digraph {
 public:
  Digraph() = default;
  explicit Digraph(std::size_t node_count);

  /// Appends a node and returns its id.
  NodeId add_node();

  /// Adds the edge from -> to. Duplicate edges are allowed (and kept);
  /// use has_edge() first if uniqueness matters to the caller.
  void add_edge(NodeId from, NodeId to);

  [[nodiscard]] std::size_t node_count() const noexcept { return out_.size(); }
  [[nodiscard]] std::size_t edge_count() const noexcept { return edge_count_; }

  [[nodiscard]] const std::vector<NodeId>& successors(NodeId n) const;
  [[nodiscard]] const std::vector<NodeId>& predecessors(NodeId n) const;

  [[nodiscard]] std::size_t out_degree(NodeId n) const { return successors(n).size(); }
  [[nodiscard]] std::size_t in_degree(NodeId n) const { return predecessors(n).size(); }

  [[nodiscard]] bool has_edge(NodeId from, NodeId to) const;
  [[nodiscard]] bool valid(NodeId n) const noexcept {
    return n >= 0 && static_cast<std::size_t>(n) < out_.size();
  }

  /// Nodes with in-degree 0 / out-degree 0.
  [[nodiscard]] std::vector<NodeId> sources() const;
  [[nodiscard]] std::vector<NodeId> sinks() const;

  /// A copy of this graph with all edges reversed.
  [[nodiscard]] Digraph reversed() const;

 private:
  void check(NodeId n) const;

  std::vector<std::vector<NodeId>> out_;
  std::vector<std::vector<NodeId>> in_;
  std::size_t edge_count_ = 0;
};

}  // namespace selfheal::graph
