#include "selfheal/graph/digraph.hpp"

#include <algorithm>
#include <stdexcept>
#include <string>

namespace selfheal::graph {

Digraph::Digraph(std::size_t node_count) : out_(node_count), in_(node_count) {}

NodeId Digraph::add_node() {
  out_.emplace_back();
  in_.emplace_back();
  return static_cast<NodeId>(out_.size() - 1);
}

void Digraph::add_edge(NodeId from, NodeId to) {
  check(from);
  check(to);
  out_[static_cast<std::size_t>(from)].push_back(to);
  in_[static_cast<std::size_t>(to)].push_back(from);
  ++edge_count_;
}

const std::vector<NodeId>& Digraph::successors(NodeId n) const {
  check(n);
  return out_[static_cast<std::size_t>(n)];
}

const std::vector<NodeId>& Digraph::predecessors(NodeId n) const {
  check(n);
  return in_[static_cast<std::size_t>(n)];
}

bool Digraph::has_edge(NodeId from, NodeId to) const {
  const auto& succ = successors(from);
  return std::find(succ.begin(), succ.end(), to) != succ.end();
}

std::vector<NodeId> Digraph::sources() const {
  std::vector<NodeId> result;
  for (std::size_t n = 0; n < in_.size(); ++n) {
    if (in_[n].empty()) result.push_back(static_cast<NodeId>(n));
  }
  return result;
}

std::vector<NodeId> Digraph::sinks() const {
  std::vector<NodeId> result;
  for (std::size_t n = 0; n < out_.size(); ++n) {
    if (out_[n].empty()) result.push_back(static_cast<NodeId>(n));
  }
  return result;
}

Digraph Digraph::reversed() const {
  Digraph rev(node_count());
  for (std::size_t n = 0; n < out_.size(); ++n) {
    for (NodeId to : out_[n]) rev.add_edge(to, static_cast<NodeId>(n));
  }
  return rev;
}

void Digraph::check(NodeId n) const {
  if (!valid(n)) {
    throw std::out_of_range("Digraph: invalid node id " + std::to_string(n) +
                            " (node_count=" + std::to_string(out_.size()) + ")");
  }
}

}  // namespace selfheal::graph
