file(REMOVE_RECURSE
  "CMakeFiles/static_deps_test.dir/static_deps_test.cpp.o"
  "CMakeFiles/static_deps_test.dir/static_deps_test.cpp.o.d"
  "static_deps_test"
  "static_deps_test.pdb"
  "static_deps_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/static_deps_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
