# Empty compiler generated dependencies file for static_deps_test.
# This may be replaced when dependencies are built.
