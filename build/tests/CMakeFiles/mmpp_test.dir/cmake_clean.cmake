file(REMOVE_RECURSE
  "CMakeFiles/mmpp_test.dir/mmpp_test.cpp.o"
  "CMakeFiles/mmpp_test.dir/mmpp_test.cpp.o.d"
  "mmpp_test"
  "mmpp_test.pdb"
  "mmpp_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mmpp_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
