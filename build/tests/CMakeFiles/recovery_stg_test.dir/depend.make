# Empty dependencies file for recovery_stg_test.
# This may be replaced when dependencies are built.
