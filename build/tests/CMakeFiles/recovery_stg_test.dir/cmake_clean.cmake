file(REMOVE_RECURSE
  "CMakeFiles/recovery_stg_test.dir/recovery_stg_test.cpp.o"
  "CMakeFiles/recovery_stg_test.dir/recovery_stg_test.cpp.o.d"
  "recovery_stg_test"
  "recovery_stg_test.pdb"
  "recovery_stg_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/recovery_stg_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
