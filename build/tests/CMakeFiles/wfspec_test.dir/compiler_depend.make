# Empty compiler generated dependencies file for wfspec_test.
# This may be replaced when dependencies are built.
