file(REMOVE_RECURSE
  "CMakeFiles/wfspec_test.dir/wfspec_test.cpp.o"
  "CMakeFiles/wfspec_test.dir/wfspec_test.cpp.o.d"
  "wfspec_test"
  "wfspec_test.pdb"
  "wfspec_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/wfspec_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
