# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/util_test[1]_include.cmake")
include("/root/repo/build/tests/graph_test[1]_include.cmake")
include("/root/repo/build/tests/linalg_test[1]_include.cmake")
include("/root/repo/build/tests/ctmc_test[1]_include.cmake")
include("/root/repo/build/tests/recovery_stg_test[1]_include.cmake")
include("/root/repo/build/tests/wfspec_test[1]_include.cmake")
include("/root/repo/build/tests/engine_test[1]_include.cmake")
include("/root/repo/build/tests/deps_test[1]_include.cmake")
include("/root/repo/build/tests/recovery_test[1]_include.cmake")
include("/root/repo/build/tests/controller_test[1]_include.cmake")
include("/root/repo/build/tests/sim_test[1]_include.cmake")
include("/root/repo/build/tests/property_test[1]_include.cmake")
include("/root/repo/build/tests/strategy_test[1]_include.cmake")
include("/root/repo/build/tests/ids_test[1]_include.cmake")
include("/root/repo/build/tests/correctness_test[1]_include.cmake")
include("/root/repo/build/tests/session_test[1]_include.cmake")
include("/root/repo/build/tests/static_deps_test[1]_include.cmake")
include("/root/repo/build/tests/soak_test[1]_include.cmake")
include("/root/repo/build/tests/mmpp_test[1]_include.cmake")
