file(REMOVE_RECURSE
  "CMakeFiles/ids_delay_sweep.dir/ids_delay_sweep.cpp.o"
  "CMakeFiles/ids_delay_sweep.dir/ids_delay_sweep.cpp.o.d"
  "ids_delay_sweep"
  "ids_delay_sweep.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ids_delay_sweep.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
