# Empty compiler generated dependencies file for ids_delay_sweep.
# This may be replaced when dependencies are built.
