file(REMOVE_RECURSE
  "CMakeFiles/analyzer_microbench.dir/analyzer_microbench.cpp.o"
  "CMakeFiles/analyzer_microbench.dir/analyzer_microbench.cpp.o.d"
  "analyzer_microbench"
  "analyzer_microbench.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/analyzer_microbench.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
