# Empty dependencies file for analyzer_microbench.
# This may be replaced when dependencies are built.
