file(REMOVE_RECURSE
  "CMakeFiles/guidelines_design.dir/guidelines_design.cpp.o"
  "CMakeFiles/guidelines_design.dir/guidelines_design.cpp.o.d"
  "guidelines_design"
  "guidelines_design.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/guidelines_design.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
