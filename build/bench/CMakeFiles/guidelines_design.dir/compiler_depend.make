# Empty compiler generated dependencies file for guidelines_design.
# This may be replaced when dependencies are built.
