# Empty dependencies file for buffer_asymmetry.
# This may be replaced when dependencies are built.
