file(REMOVE_RECURSE
  "CMakeFiles/buffer_asymmetry.dir/buffer_asymmetry.cpp.o"
  "CMakeFiles/buffer_asymmetry.dir/buffer_asymmetry.cpp.o.d"
  "buffer_asymmetry"
  "buffer_asymmetry.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/buffer_asymmetry.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
