# Empty compiler generated dependencies file for ctmc_microbench.
# This may be replaced when dependencies are built.
