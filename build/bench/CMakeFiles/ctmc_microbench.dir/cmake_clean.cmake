file(REMOVE_RECURSE
  "CMakeFiles/ctmc_microbench.dir/ctmc_microbench.cpp.o"
  "CMakeFiles/ctmc_microbench.dir/ctmc_microbench.cpp.o.d"
  "ctmc_microbench"
  "ctmc_microbench.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ctmc_microbench.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
