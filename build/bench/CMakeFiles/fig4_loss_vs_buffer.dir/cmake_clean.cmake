file(REMOVE_RECURSE
  "CMakeFiles/fig4_loss_vs_buffer.dir/fig4_loss_vs_buffer.cpp.o"
  "CMakeFiles/fig4_loss_vs_buffer.dir/fig4_loss_vs_buffer.cpp.o.d"
  "fig4_loss_vs_buffer"
  "fig4_loss_vs_buffer.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig4_loss_vs_buffer.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
