# Empty dependencies file for fig4_loss_vs_buffer.
# This may be replaced when dependencies are built.
