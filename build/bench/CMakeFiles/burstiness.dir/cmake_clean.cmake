file(REMOVE_RECURSE
  "CMakeFiles/burstiness.dir/burstiness.cpp.o"
  "CMakeFiles/burstiness.dir/burstiness.cpp.o.d"
  "burstiness"
  "burstiness.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/burstiness.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
