# Empty dependencies file for burstiness.
# This may be replaced when dependencies are built.
