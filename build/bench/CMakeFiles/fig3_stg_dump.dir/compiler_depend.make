# Empty compiler generated dependencies file for fig3_stg_dump.
# This may be replaced when dependencies are built.
