file(REMOVE_RECURSE
  "CMakeFiles/fig3_stg_dump.dir/fig3_stg_dump.cpp.o"
  "CMakeFiles/fig3_stg_dump.dir/fig3_stg_dump.cpp.o.d"
  "fig3_stg_dump"
  "fig3_stg_dump.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig3_stg_dump.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
