file(REMOVE_RECURSE
  "CMakeFiles/recovery_scalability.dir/recovery_scalability.cpp.o"
  "CMakeFiles/recovery_scalability.dir/recovery_scalability.cpp.o.d"
  "recovery_scalability"
  "recovery_scalability.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/recovery_scalability.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
