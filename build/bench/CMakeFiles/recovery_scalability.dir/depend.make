# Empty dependencies file for recovery_scalability.
# This may be replaced when dependencies are built.
