file(REMOVE_RECURSE
  "CMakeFiles/fig5_steady_state.dir/fig5_steady_state.cpp.o"
  "CMakeFiles/fig5_steady_state.dir/fig5_steady_state.cpp.o.d"
  "fig5_steady_state"
  "fig5_steady_state.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig5_steady_state.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
