# Empty dependencies file for fig5_steady_state.
# This may be replaced when dependencies are built.
