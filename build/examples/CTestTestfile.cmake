# CMake generated Testfile for 
# Source directory: /root/repo/examples
# Build directory: /root/repo/build/examples
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
add_test(example_quickstart "/root/repo/build/examples/quickstart")
set_tests_properties(example_quickstart PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;14;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_bank_fraud "/root/repo/build/examples/bank_fraud")
set_tests_properties(example_bank_fraud PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;15;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_travel_booking "/root/repo/build/examples/travel_booking")
set_tests_properties(example_travel_booking PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;16;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_capacity_planning "/root/repo/build/examples/capacity_planning")
set_tests_properties(example_capacity_planning PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;17;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_cli_demo "/root/repo/build/examples/selfheal_cli" "--log")
set_tests_properties(example_cli_demo PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;18;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_cli_save_load "sh" "-c" "/root/repo/build/examples/selfheal_cli --save cli_session.txt &&                         /root/repo/build/examples/selfheal_cli --load cli_session.txt")
set_tests_properties(example_cli_save_load PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;19;add_test;/root/repo/examples/CMakeLists.txt;0;")
