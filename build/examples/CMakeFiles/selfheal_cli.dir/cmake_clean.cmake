file(REMOVE_RECURSE
  "CMakeFiles/selfheal_cli.dir/selfheal_cli.cpp.o"
  "CMakeFiles/selfheal_cli.dir/selfheal_cli.cpp.o.d"
  "selfheal_cli"
  "selfheal_cli.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/selfheal_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
