# Empty dependencies file for selfheal_cli.
# This may be replaced when dependencies are built.
