file(REMOVE_RECURSE
  "CMakeFiles/bank_fraud.dir/bank_fraud.cpp.o"
  "CMakeFiles/bank_fraud.dir/bank_fraud.cpp.o.d"
  "bank_fraud"
  "bank_fraud.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bank_fraud.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
