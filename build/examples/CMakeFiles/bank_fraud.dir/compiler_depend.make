# Empty compiler generated dependencies file for bank_fraud.
# This may be replaced when dependencies are built.
