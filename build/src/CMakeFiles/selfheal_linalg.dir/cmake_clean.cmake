file(REMOVE_RECURSE
  "CMakeFiles/selfheal_linalg.dir/selfheal/linalg/lu.cpp.o"
  "CMakeFiles/selfheal_linalg.dir/selfheal/linalg/lu.cpp.o.d"
  "CMakeFiles/selfheal_linalg.dir/selfheal/linalg/matrix.cpp.o"
  "CMakeFiles/selfheal_linalg.dir/selfheal/linalg/matrix.cpp.o.d"
  "libselfheal_linalg.a"
  "libselfheal_linalg.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/selfheal_linalg.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
