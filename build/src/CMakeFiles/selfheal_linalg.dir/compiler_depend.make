# Empty compiler generated dependencies file for selfheal_linalg.
# This may be replaced when dependencies are built.
