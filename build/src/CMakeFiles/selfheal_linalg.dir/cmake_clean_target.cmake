file(REMOVE_RECURSE
  "libselfheal_linalg.a"
)
