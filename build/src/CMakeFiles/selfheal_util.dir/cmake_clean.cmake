file(REMOVE_RECURSE
  "CMakeFiles/selfheal_util.dir/selfheal/util/flags.cpp.o"
  "CMakeFiles/selfheal_util.dir/selfheal/util/flags.cpp.o.d"
  "CMakeFiles/selfheal_util.dir/selfheal/util/log.cpp.o"
  "CMakeFiles/selfheal_util.dir/selfheal/util/log.cpp.o.d"
  "CMakeFiles/selfheal_util.dir/selfheal/util/rng.cpp.o"
  "CMakeFiles/selfheal_util.dir/selfheal/util/rng.cpp.o.d"
  "CMakeFiles/selfheal_util.dir/selfheal/util/stats.cpp.o"
  "CMakeFiles/selfheal_util.dir/selfheal/util/stats.cpp.o.d"
  "CMakeFiles/selfheal_util.dir/selfheal/util/table.cpp.o"
  "CMakeFiles/selfheal_util.dir/selfheal/util/table.cpp.o.d"
  "libselfheal_util.a"
  "libselfheal_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/selfheal_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
