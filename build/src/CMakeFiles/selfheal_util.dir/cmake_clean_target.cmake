file(REMOVE_RECURSE
  "libselfheal_util.a"
)
