
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/selfheal/util/flags.cpp" "src/CMakeFiles/selfheal_util.dir/selfheal/util/flags.cpp.o" "gcc" "src/CMakeFiles/selfheal_util.dir/selfheal/util/flags.cpp.o.d"
  "/root/repo/src/selfheal/util/log.cpp" "src/CMakeFiles/selfheal_util.dir/selfheal/util/log.cpp.o" "gcc" "src/CMakeFiles/selfheal_util.dir/selfheal/util/log.cpp.o.d"
  "/root/repo/src/selfheal/util/rng.cpp" "src/CMakeFiles/selfheal_util.dir/selfheal/util/rng.cpp.o" "gcc" "src/CMakeFiles/selfheal_util.dir/selfheal/util/rng.cpp.o.d"
  "/root/repo/src/selfheal/util/stats.cpp" "src/CMakeFiles/selfheal_util.dir/selfheal/util/stats.cpp.o" "gcc" "src/CMakeFiles/selfheal_util.dir/selfheal/util/stats.cpp.o.d"
  "/root/repo/src/selfheal/util/table.cpp" "src/CMakeFiles/selfheal_util.dir/selfheal/util/table.cpp.o" "gcc" "src/CMakeFiles/selfheal_util.dir/selfheal/util/table.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
