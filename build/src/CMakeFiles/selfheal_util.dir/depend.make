# Empty dependencies file for selfheal_util.
# This may be replaced when dependencies are built.
