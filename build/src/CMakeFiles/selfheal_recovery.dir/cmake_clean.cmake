file(REMOVE_RECURSE
  "CMakeFiles/selfheal_recovery.dir/selfheal/recovery/analyzer.cpp.o"
  "CMakeFiles/selfheal_recovery.dir/selfheal/recovery/analyzer.cpp.o.d"
  "CMakeFiles/selfheal_recovery.dir/selfheal/recovery/controller.cpp.o"
  "CMakeFiles/selfheal_recovery.dir/selfheal/recovery/controller.cpp.o.d"
  "CMakeFiles/selfheal_recovery.dir/selfheal/recovery/correctness.cpp.o"
  "CMakeFiles/selfheal_recovery.dir/selfheal/recovery/correctness.cpp.o.d"
  "CMakeFiles/selfheal_recovery.dir/selfheal/recovery/plan.cpp.o"
  "CMakeFiles/selfheal_recovery.dir/selfheal/recovery/plan.cpp.o.d"
  "CMakeFiles/selfheal_recovery.dir/selfheal/recovery/scheduler.cpp.o"
  "CMakeFiles/selfheal_recovery.dir/selfheal/recovery/scheduler.cpp.o.d"
  "libselfheal_recovery.a"
  "libselfheal_recovery.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/selfheal_recovery.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
