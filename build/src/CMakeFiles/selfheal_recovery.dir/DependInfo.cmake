
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/selfheal/recovery/analyzer.cpp" "src/CMakeFiles/selfheal_recovery.dir/selfheal/recovery/analyzer.cpp.o" "gcc" "src/CMakeFiles/selfheal_recovery.dir/selfheal/recovery/analyzer.cpp.o.d"
  "/root/repo/src/selfheal/recovery/controller.cpp" "src/CMakeFiles/selfheal_recovery.dir/selfheal/recovery/controller.cpp.o" "gcc" "src/CMakeFiles/selfheal_recovery.dir/selfheal/recovery/controller.cpp.o.d"
  "/root/repo/src/selfheal/recovery/correctness.cpp" "src/CMakeFiles/selfheal_recovery.dir/selfheal/recovery/correctness.cpp.o" "gcc" "src/CMakeFiles/selfheal_recovery.dir/selfheal/recovery/correctness.cpp.o.d"
  "/root/repo/src/selfheal/recovery/plan.cpp" "src/CMakeFiles/selfheal_recovery.dir/selfheal/recovery/plan.cpp.o" "gcc" "src/CMakeFiles/selfheal_recovery.dir/selfheal/recovery/plan.cpp.o.d"
  "/root/repo/src/selfheal/recovery/scheduler.cpp" "src/CMakeFiles/selfheal_recovery.dir/selfheal/recovery/scheduler.cpp.o" "gcc" "src/CMakeFiles/selfheal_recovery.dir/selfheal/recovery/scheduler.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/selfheal_deps.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/selfheal_ids.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/selfheal_engine.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/selfheal_wfspec.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/selfheal_graph.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/selfheal_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
