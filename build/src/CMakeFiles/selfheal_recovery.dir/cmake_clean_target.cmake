file(REMOVE_RECURSE
  "libselfheal_recovery.a"
)
