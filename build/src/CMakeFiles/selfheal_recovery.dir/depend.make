# Empty dependencies file for selfheal_recovery.
# This may be replaced when dependencies are built.
