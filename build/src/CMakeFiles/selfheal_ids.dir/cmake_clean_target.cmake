file(REMOVE_RECURSE
  "libselfheal_ids.a"
)
