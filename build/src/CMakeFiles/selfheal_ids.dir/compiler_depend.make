# Empty compiler generated dependencies file for selfheal_ids.
# This may be replaced when dependencies are built.
