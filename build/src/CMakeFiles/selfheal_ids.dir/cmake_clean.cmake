file(REMOVE_RECURSE
  "CMakeFiles/selfheal_ids.dir/selfheal/ids/ids.cpp.o"
  "CMakeFiles/selfheal_ids.dir/selfheal/ids/ids.cpp.o.d"
  "libselfheal_ids.a"
  "libselfheal_ids.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/selfheal_ids.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
