file(REMOVE_RECURSE
  "CMakeFiles/selfheal_deps.dir/selfheal/deps/dependency.cpp.o"
  "CMakeFiles/selfheal_deps.dir/selfheal/deps/dependency.cpp.o.d"
  "libselfheal_deps.a"
  "libselfheal_deps.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/selfheal_deps.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
