file(REMOVE_RECURSE
  "libselfheal_deps.a"
)
