# Empty compiler generated dependencies file for selfheal_deps.
# This may be replaced when dependencies are built.
