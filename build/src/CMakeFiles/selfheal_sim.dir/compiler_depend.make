# Empty compiler generated dependencies file for selfheal_sim.
# This may be replaced when dependencies are built.
