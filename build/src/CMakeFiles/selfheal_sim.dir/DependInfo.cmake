
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/selfheal/sim/des.cpp" "src/CMakeFiles/selfheal_sim.dir/selfheal/sim/des.cpp.o" "gcc" "src/CMakeFiles/selfheal_sim.dir/selfheal/sim/des.cpp.o.d"
  "/root/repo/src/selfheal/sim/queueing_sim.cpp" "src/CMakeFiles/selfheal_sim.dir/selfheal/sim/queueing_sim.cpp.o" "gcc" "src/CMakeFiles/selfheal_sim.dir/selfheal/sim/queueing_sim.cpp.o.d"
  "/root/repo/src/selfheal/sim/system_sim.cpp" "src/CMakeFiles/selfheal_sim.dir/selfheal/sim/system_sim.cpp.o" "gcc" "src/CMakeFiles/selfheal_sim.dir/selfheal/sim/system_sim.cpp.o.d"
  "/root/repo/src/selfheal/sim/workload.cpp" "src/CMakeFiles/selfheal_sim.dir/selfheal/sim/workload.cpp.o" "gcc" "src/CMakeFiles/selfheal_sim.dir/selfheal/sim/workload.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/selfheal_recovery.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/selfheal_ctmc.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/selfheal_deps.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/selfheal_ids.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/selfheal_engine.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/selfheal_wfspec.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/selfheal_graph.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/selfheal_linalg.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/selfheal_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
