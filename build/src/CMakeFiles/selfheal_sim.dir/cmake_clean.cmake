file(REMOVE_RECURSE
  "CMakeFiles/selfheal_sim.dir/selfheal/sim/des.cpp.o"
  "CMakeFiles/selfheal_sim.dir/selfheal/sim/des.cpp.o.d"
  "CMakeFiles/selfheal_sim.dir/selfheal/sim/queueing_sim.cpp.o"
  "CMakeFiles/selfheal_sim.dir/selfheal/sim/queueing_sim.cpp.o.d"
  "CMakeFiles/selfheal_sim.dir/selfheal/sim/system_sim.cpp.o"
  "CMakeFiles/selfheal_sim.dir/selfheal/sim/system_sim.cpp.o.d"
  "CMakeFiles/selfheal_sim.dir/selfheal/sim/workload.cpp.o"
  "CMakeFiles/selfheal_sim.dir/selfheal/sim/workload.cpp.o.d"
  "libselfheal_sim.a"
  "libselfheal_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/selfheal_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
