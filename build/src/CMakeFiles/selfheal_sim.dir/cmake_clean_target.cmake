file(REMOVE_RECURSE
  "libselfheal_sim.a"
)
