file(REMOVE_RECURSE
  "CMakeFiles/selfheal_engine.dir/selfheal/engine/engine.cpp.o"
  "CMakeFiles/selfheal_engine.dir/selfheal/engine/engine.cpp.o.d"
  "CMakeFiles/selfheal_engine.dir/selfheal/engine/session_io.cpp.o"
  "CMakeFiles/selfheal_engine.dir/selfheal/engine/session_io.cpp.o.d"
  "CMakeFiles/selfheal_engine.dir/selfheal/engine/system_log.cpp.o"
  "CMakeFiles/selfheal_engine.dir/selfheal/engine/system_log.cpp.o.d"
  "CMakeFiles/selfheal_engine.dir/selfheal/engine/value.cpp.o"
  "CMakeFiles/selfheal_engine.dir/selfheal/engine/value.cpp.o.d"
  "CMakeFiles/selfheal_engine.dir/selfheal/engine/versioned_store.cpp.o"
  "CMakeFiles/selfheal_engine.dir/selfheal/engine/versioned_store.cpp.o.d"
  "libselfheal_engine.a"
  "libselfheal_engine.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/selfheal_engine.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
