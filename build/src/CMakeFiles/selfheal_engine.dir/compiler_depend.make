# Empty compiler generated dependencies file for selfheal_engine.
# This may be replaced when dependencies are built.
