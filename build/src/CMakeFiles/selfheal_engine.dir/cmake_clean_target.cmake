file(REMOVE_RECURSE
  "libselfheal_engine.a"
)
