
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/selfheal/engine/engine.cpp" "src/CMakeFiles/selfheal_engine.dir/selfheal/engine/engine.cpp.o" "gcc" "src/CMakeFiles/selfheal_engine.dir/selfheal/engine/engine.cpp.o.d"
  "/root/repo/src/selfheal/engine/session_io.cpp" "src/CMakeFiles/selfheal_engine.dir/selfheal/engine/session_io.cpp.o" "gcc" "src/CMakeFiles/selfheal_engine.dir/selfheal/engine/session_io.cpp.o.d"
  "/root/repo/src/selfheal/engine/system_log.cpp" "src/CMakeFiles/selfheal_engine.dir/selfheal/engine/system_log.cpp.o" "gcc" "src/CMakeFiles/selfheal_engine.dir/selfheal/engine/system_log.cpp.o.d"
  "/root/repo/src/selfheal/engine/value.cpp" "src/CMakeFiles/selfheal_engine.dir/selfheal/engine/value.cpp.o" "gcc" "src/CMakeFiles/selfheal_engine.dir/selfheal/engine/value.cpp.o.d"
  "/root/repo/src/selfheal/engine/versioned_store.cpp" "src/CMakeFiles/selfheal_engine.dir/selfheal/engine/versioned_store.cpp.o" "gcc" "src/CMakeFiles/selfheal_engine.dir/selfheal/engine/versioned_store.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/selfheal_wfspec.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/selfheal_util.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/selfheal_graph.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
