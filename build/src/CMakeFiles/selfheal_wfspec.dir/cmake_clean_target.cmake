file(REMOVE_RECURSE
  "libselfheal_wfspec.a"
)
