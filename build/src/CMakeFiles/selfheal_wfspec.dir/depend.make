# Empty dependencies file for selfheal_wfspec.
# This may be replaced when dependencies are built.
