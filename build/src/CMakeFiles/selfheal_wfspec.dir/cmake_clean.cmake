file(REMOVE_RECURSE
  "CMakeFiles/selfheal_wfspec.dir/selfheal/wfspec/object_catalog.cpp.o"
  "CMakeFiles/selfheal_wfspec.dir/selfheal/wfspec/object_catalog.cpp.o.d"
  "CMakeFiles/selfheal_wfspec.dir/selfheal/wfspec/parser.cpp.o"
  "CMakeFiles/selfheal_wfspec.dir/selfheal/wfspec/parser.cpp.o.d"
  "CMakeFiles/selfheal_wfspec.dir/selfheal/wfspec/static_deps.cpp.o"
  "CMakeFiles/selfheal_wfspec.dir/selfheal/wfspec/static_deps.cpp.o.d"
  "CMakeFiles/selfheal_wfspec.dir/selfheal/wfspec/workflow_spec.cpp.o"
  "CMakeFiles/selfheal_wfspec.dir/selfheal/wfspec/workflow_spec.cpp.o.d"
  "libselfheal_wfspec.a"
  "libselfheal_wfspec.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/selfheal_wfspec.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
