file(REMOVE_RECURSE
  "libselfheal_graph.a"
)
