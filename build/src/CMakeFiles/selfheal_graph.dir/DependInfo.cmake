
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/selfheal/graph/digraph.cpp" "src/CMakeFiles/selfheal_graph.dir/selfheal/graph/digraph.cpp.o" "gcc" "src/CMakeFiles/selfheal_graph.dir/selfheal/graph/digraph.cpp.o.d"
  "/root/repo/src/selfheal/graph/dominators.cpp" "src/CMakeFiles/selfheal_graph.dir/selfheal/graph/dominators.cpp.o" "gcc" "src/CMakeFiles/selfheal_graph.dir/selfheal/graph/dominators.cpp.o.d"
  "/root/repo/src/selfheal/graph/dot.cpp" "src/CMakeFiles/selfheal_graph.dir/selfheal/graph/dot.cpp.o" "gcc" "src/CMakeFiles/selfheal_graph.dir/selfheal/graph/dot.cpp.o.d"
  "/root/repo/src/selfheal/graph/traversal.cpp" "src/CMakeFiles/selfheal_graph.dir/selfheal/graph/traversal.cpp.o" "gcc" "src/CMakeFiles/selfheal_graph.dir/selfheal/graph/traversal.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/selfheal_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
