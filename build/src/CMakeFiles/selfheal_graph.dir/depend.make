# Empty dependencies file for selfheal_graph.
# This may be replaced when dependencies are built.
