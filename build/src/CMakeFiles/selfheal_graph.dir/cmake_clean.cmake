file(REMOVE_RECURSE
  "CMakeFiles/selfheal_graph.dir/selfheal/graph/digraph.cpp.o"
  "CMakeFiles/selfheal_graph.dir/selfheal/graph/digraph.cpp.o.d"
  "CMakeFiles/selfheal_graph.dir/selfheal/graph/dominators.cpp.o"
  "CMakeFiles/selfheal_graph.dir/selfheal/graph/dominators.cpp.o.d"
  "CMakeFiles/selfheal_graph.dir/selfheal/graph/dot.cpp.o"
  "CMakeFiles/selfheal_graph.dir/selfheal/graph/dot.cpp.o.d"
  "CMakeFiles/selfheal_graph.dir/selfheal/graph/traversal.cpp.o"
  "CMakeFiles/selfheal_graph.dir/selfheal/graph/traversal.cpp.o.d"
  "libselfheal_graph.a"
  "libselfheal_graph.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/selfheal_graph.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
