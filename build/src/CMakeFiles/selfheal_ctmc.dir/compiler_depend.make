# Empty compiler generated dependencies file for selfheal_ctmc.
# This may be replaced when dependencies are built.
