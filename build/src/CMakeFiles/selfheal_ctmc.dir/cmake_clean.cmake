file(REMOVE_RECURSE
  "CMakeFiles/selfheal_ctmc.dir/selfheal/ctmc/ctmc.cpp.o"
  "CMakeFiles/selfheal_ctmc.dir/selfheal/ctmc/ctmc.cpp.o.d"
  "CMakeFiles/selfheal_ctmc.dir/selfheal/ctmc/degradation.cpp.o"
  "CMakeFiles/selfheal_ctmc.dir/selfheal/ctmc/degradation.cpp.o.d"
  "CMakeFiles/selfheal_ctmc.dir/selfheal/ctmc/mmpp_stg.cpp.o"
  "CMakeFiles/selfheal_ctmc.dir/selfheal/ctmc/mmpp_stg.cpp.o.d"
  "CMakeFiles/selfheal_ctmc.dir/selfheal/ctmc/recovery_stg.cpp.o"
  "CMakeFiles/selfheal_ctmc.dir/selfheal/ctmc/recovery_stg.cpp.o.d"
  "libselfheal_ctmc.a"
  "libselfheal_ctmc.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/selfheal_ctmc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
