file(REMOVE_RECURSE
  "libselfheal_ctmc.a"
)
