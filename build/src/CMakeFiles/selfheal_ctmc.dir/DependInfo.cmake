
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/selfheal/ctmc/ctmc.cpp" "src/CMakeFiles/selfheal_ctmc.dir/selfheal/ctmc/ctmc.cpp.o" "gcc" "src/CMakeFiles/selfheal_ctmc.dir/selfheal/ctmc/ctmc.cpp.o.d"
  "/root/repo/src/selfheal/ctmc/degradation.cpp" "src/CMakeFiles/selfheal_ctmc.dir/selfheal/ctmc/degradation.cpp.o" "gcc" "src/CMakeFiles/selfheal_ctmc.dir/selfheal/ctmc/degradation.cpp.o.d"
  "/root/repo/src/selfheal/ctmc/mmpp_stg.cpp" "src/CMakeFiles/selfheal_ctmc.dir/selfheal/ctmc/mmpp_stg.cpp.o" "gcc" "src/CMakeFiles/selfheal_ctmc.dir/selfheal/ctmc/mmpp_stg.cpp.o.d"
  "/root/repo/src/selfheal/ctmc/recovery_stg.cpp" "src/CMakeFiles/selfheal_ctmc.dir/selfheal/ctmc/recovery_stg.cpp.o" "gcc" "src/CMakeFiles/selfheal_ctmc.dir/selfheal/ctmc/recovery_stg.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/selfheal_linalg.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/selfheal_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
