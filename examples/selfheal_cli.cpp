// selfheal_cli: drive the whole system from workflow DSL files.
//
//   selfheal_cli [flags] workflow1.wf workflow2.wf ...
//     --attack WORKFLOW:TASK   corrupt TASK of WORKFLOW's run
//                              (repeatable via comma list)
//     --dot                    print the workflows as Graphviz DOT
//     --deps                   print compile-time dependence relations
//     --log                    print the system log before/after
//     --plan                   print the recovery plan
//     --strategy strict|risky|multi-version
//     --save FILE              persist the repaired session to FILE
//     --load FILE              restore a session instead of running
//                              workflows (recovery then runs on it)
//     --metrics-out FILE       dump the obs metrics snapshot as JSONL
//     --trace-out FILE         record spans; write Chrome trace_event
//                              JSON (chrome://tracing / Perfetto)
//     --metrics-summary        print the metrics summary table
//
// With no files, a built-in demo pair of workflows is used. Each file
// holds one workflow in the DSL of selfheal/wfspec/parser.hpp. All
// workflows share one object catalog, run once, are attacked as
// requested, detected by the simulated IDS, and repaired through the
// self-healing controller; the exit code reports strict correctness.
#include <cstdio>
#include <fstream>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "selfheal/engine/session_io.hpp"
#include "selfheal/obs/artifacts.hpp"
#include "selfheal/recovery/analyzer.hpp"
#include "selfheal/recovery/controller.hpp"
#include "selfheal/recovery/correctness.hpp"
#include "selfheal/util/flags.hpp"
#include "selfheal/wfspec/parser.hpp"
#include "selfheal/wfspec/static_deps.hpp"

using namespace selfheal;

namespace {

constexpr const char* kDemoOrders = R"(
workflow orders
task receive writes order
task check reads order writes decision
task route reads decision writes lane selector decision
task express reads lane writes shipment
task standard reads lane writes shipment
task invoice reads shipment order writes bill
edge receive check
edge check route
edge route express standard
edge express invoice
edge standard invoice
)";

constexpr const char* kDemoAudit = R"(
workflow audit
task snapshot reads bill writes books
task verify reads books writes verdict
edge snapshot verify
)";

std::string read_file(const std::string& path) {
  std::ifstream in(path);
  if (!in) {
    std::fprintf(stderr, "selfheal_cli: cannot open %s\n", path.c_str());
    std::exit(2);
  }
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return buffer.str();
}

std::vector<std::string> split(const std::string& text, char sep) {
  std::vector<std::string> parts;
  std::istringstream in(text);
  std::string part;
  while (std::getline(in, part, sep)) {
    if (!part.empty()) parts.push_back(part);
  }
  return parts;
}

}  // namespace

int main(int argc, char** argv) {
  const util::Flags flags(argc, argv);
  obs::init_from_flags(flags);

  engine::Session session;
  if (flags.has("load")) {
    // --- Restore a persisted session (the attack is already inside).
    try {
      session = engine::load_session_file(flags.get("load", ""));
    } catch (const std::exception& e) {
      std::fprintf(stderr, "selfheal_cli: %s\n", e.what());
      return 2;
    }
    std::printf("loaded session: %zu runs, %zu log entries\n",
                session.engine->run_count(), session.engine->log().size());
    session.engine->run_all();  // finish anything that was in flight
  } else {
    // --- Load workflows.
    session.catalog = std::make_unique<wfspec::ObjectCatalog>();
    auto& catalog = *session.catalog;
    auto& specs = session.specs;
    try {
      if (flags.positional().empty()) {
        specs.push_back(std::make_unique<wfspec::WorkflowSpec>(
            wfspec::parse_workflow(kDemoOrders, catalog)));
        specs.push_back(std::make_unique<wfspec::WorkflowSpec>(
            wfspec::parse_workflow(kDemoAudit, catalog)));
        std::printf("no workflow files given: using the built-in demo pair\n");
      } else {
        for (const auto& path : flags.positional()) {
          specs.push_back(std::make_unique<wfspec::WorkflowSpec>(
              wfspec::parse_workflow(read_file(path), catalog)));
        }
      }
    } catch (const std::exception& e) {
      std::fprintf(stderr, "selfheal_cli: %s\n", e.what());
      return 2;
    }

    if (flags.get_bool("dot", false)) {
      for (const auto& spec : specs) std::printf("%s\n", spec->to_dot().c_str());
    }
    if (flags.get_bool("deps", false)) {
      // Compile-time dependences (Section IV.B): what a deployment would
      // ship to recovery nodes instead of the full specification.
      for (const auto& spec : specs) {
        const wfspec::StaticDependence static_deps(*spec);
        std::printf("static dependences of %s:\n%s\n", spec->name().c_str(),
                    static_deps.summary().c_str());
      }
    }

    // --- Start runs and inject the requested attacks.
    session.engine = std::make_unique<engine::Engine>();
    auto& eng = *session.engine;
    std::vector<engine::RunId> runs;
    for (const auto& spec : specs) runs.push_back(eng.start_run(*spec));

    const auto attack_list = flags.get("attack", "orders:check");
    for (const auto& attack : split(attack_list, ',')) {
      const auto colon = attack.find(':');
      if (colon == std::string::npos) {
        std::fprintf(stderr, "selfheal_cli: --attack expects WORKFLOW:TASK\n");
        return 2;
      }
      const auto wf_name = attack.substr(0, colon);
      const auto task_name = attack.substr(colon + 1);
      bool found = false;
      for (std::size_t i = 0; i < specs.size(); ++i) {
        if (specs[i]->name() != wf_name) continue;
        try {
          eng.inject_malicious(runs[i], specs[i]->task_by_name(task_name));
        } catch (const std::exception& e) {
          std::fprintf(stderr, "selfheal_cli: %s\n", e.what());
          return 2;
        }
        found = true;
      }
      if (!found) {
        std::fprintf(stderr, "selfheal_cli: no workflow named %s\n", wf_name.c_str());
        return 2;
      }
      std::printf("attack: %s\n", attack.c_str());
    }
    eng.run_all();
  }
  auto& eng = *session.engine;

  if (flags.get_bool("log", false)) {
    std::printf("log (attacked): %s\n", eng.log().render(eng.specs_by_run()).c_str());
  }

  // --- Detect and recover through the controller.
  recovery::ControllerConfig config;
  const auto strategy = flags.get("strategy", "strict");
  if (strategy == "risky") {
    config.strategy = recovery::ConcurrencyStrategy::kRisky;
  } else if (strategy == "multi-version") {
    config.strategy = recovery::ConcurrencyStrategy::kMultiVersion;
  } else if (strategy != "strict") {
    std::fprintf(stderr, "selfheal_cli: unknown strategy %s\n", strategy.c_str());
    return 2;
  }
  recovery::SelfHealingController controller(eng, config);

  ids::IdsSimulator detector;
  util::Rng rng(0x5e1f);
  const auto alerts = detector.detect(eng.log(), rng);
  std::printf("IDS raised %zu alert(s)\n", alerts.size());
  for (const auto& alert : alerts) controller.submit_alert(alert);

  if (flags.get_bool("plan", false) && !alerts.empty()) {
    const recovery::RecoveryAnalyzer analyzer(eng);
    std::vector<engine::InstanceId> all;
    for (const auto& alert : alerts) {
      all.insert(all.end(), alert.malicious.begin(), alert.malicious.end());
    }
    std::printf("%s", analyzer.analyze(all)
                          .describe(eng.log(), eng.specs_by_run())
                          .c_str());
  }

  const auto work = controller.drain();
  std::printf("recovery complete: %zu work units, %zu scans, %zu units executed\n",
              work, controller.stats().scans, controller.stats().recoveries);

  if (flags.get_bool("log", false)) {
    std::printf("log (repaired): %s\n", eng.log().render(eng.specs_by_run()).c_str());
  }

  const auto report = recovery::CorrectnessChecker(eng).check();
  std::printf("strict correct: %s (%s)\n", report.strict_correct() ? "YES" : "NO",
              report.summary.c_str());

  if (flags.has("save")) {
    const auto path = flags.get("save", "");
    try {
      engine::save_session_file(eng, path);
      std::printf("session saved to %s\n", path.c_str());
    } catch (const std::exception& e) {
      std::fprintf(stderr, "selfheal_cli: %s\n", e.what());
      return 2;
    }
  }
  obs::flush_from_flags(flags);
  return report.strict_correct() ? 0 : 1;
}
