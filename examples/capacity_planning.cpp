// Capacity planning with the CTMC model: the paper's Section VI design
// guidelines, run exactly as a system designer would.
//
// Given a target attack rate lambda and a target epsilon-convergence,
//   1. evaluate mu_k / xi_k for the candidate analyzer+scheduler design
//      (here: measured from the REAL analyzer/scheduler via the
//      full-system simulator, plus two postulated alternatives);
//   2. grow the recovery-task buffer from 2 until the loss probability
//      stops improving, and check whether epsilon is reachable;
//   3. if not, redesign (pick the slower-degrading algorithm family) and
//      repeat;
//   4. size the alert buffer for the expected peak by inspecting the
//      transient response from the NORMAL state.
//
//   $ ./capacity_planning [--lambda 1.0] [--epsilon 0.01]
#include <cstdio>
#include <map>

#include "selfheal/ctmc/recovery_stg.hpp"
#include "selfheal/sim/system_sim.hpp"
#include "selfheal/util/flags.hpp"
#include "selfheal/util/table.hpp"

using namespace selfheal;

namespace {

/// Degradation backed by a measured k -> rate table (nearest lower k,
/// scaled to the design's base rate).
ctmc::Degradation measured_table(const std::map<int, double>& rates) {
  return [rates](double base, int k) {
    if (rates.empty()) return base;
    double at_1 = rates.count(1) ? rates.at(1) : rates.begin()->second;
    double at_k = at_1;
    for (const auto& [queue, rate] : rates) {
      if (queue <= k) at_k = rate;
    }
    return base * (at_k / at_1);
  };
}

struct DesignResult {
  std::size_t buffer = 0;
  double loss = 1.0;
  bool feasible = false;
};

DesignResult size_buffer(double lambda, double epsilon, double mu1, double xi1,
                         const ctmc::Degradation& f, const ctmc::Degradation& g,
                         util::Table& table) {
  DesignResult best;
  double previous_loss = 1.0;
  for (std::size_t buffer = 2; buffer <= 30; ++buffer) {
    ctmc::RecoveryStgConfig cfg;
    cfg.lambda = lambda;
    cfg.mu1 = mu1;
    cfg.xi1 = xi1;
    cfg.f = f;
    cfg.g = g;
    cfg.alert_buffer = buffer;
    cfg.recovery_buffer = buffer;
    const ctmc::RecoveryStg stg(cfg);
    const auto pi = stg.steady_state();
    const double loss = pi ? stg.loss_probability(*pi) : 1.0;
    table.add(buffer, loss, loss <= epsilon ? "yes" : "");
    if (loss < best.loss) {
      best.loss = loss;
      best.buffer = buffer;
    }
    // Stop once the loss has clearly turned upward (Section VI step 2).
    if (buffer > 6 && loss > previous_loss * 1.5 && loss > best.loss * 2) break;
    previous_loss = loss;
  }
  best.feasible = best.loss <= epsilon;
  return best;
}

}  // namespace

int main(int argc, char** argv) {
  const util::Flags flags(argc, argv);
  const double lambda = flags.get_double("lambda", 1.0);
  const double epsilon = flags.get_double("epsilon", 0.01);

  std::printf("design target: lambda = %g attacks/unit, epsilon = %g\n", lambda,
              epsilon);

  // --- Step 1: evaluate the real analyzer/scheduler degradation.
  std::printf("%s", util::banner("step 1: measure mu_k / xi_k of the real system").c_str());
  sim::SystemSimConfig sim_cfg;
  sim_cfg.attack_rate = lambda;
  sim_cfg.horizon = 120.0;
  sim_cfg.seed = 2024;
  const auto measured = sim::run_system_sim(sim_cfg);
  util::Table rate_table({"k (queued units)", "measured mu_k", "measured xi_k"});
  for (int k = 1; k <= 8; ++k) {
    const auto mu = measured.measured_mu.count(k)
                        ? std::to_string(measured.measured_mu.at(k))
                        : std::string("-");
    const auto xi = measured.measured_xi.count(k)
                        ? std::to_string(measured.measured_xi.at(k))
                        : std::string("-");
    rate_table.add(k, mu, xi);
  }
  std::printf("%s", rate_table.render().c_str());
  const double mu1 = measured.measured_mu.count(1) ? measured.measured_mu.at(1) : 15.0;
  const double xi1 = measured.measured_xi.count(1) ? measured.measured_xi.at(1) : 20.0;
  std::printf("base rates: mu1 = %.3g, xi1 = %.3g\n", mu1, xi1);

  // --- Step 2: grow the recovery buffer under the measured degradation.
  std::printf("%s", util::banner("step 2: size the recovery-task buffer").c_str());
  util::Table sweep({"buffer", "loss probability", "meets epsilon"});
  sweep.set_precision(4);
  const auto measured_design =
      size_buffer(lambda, epsilon, mu1, xi1, measured_table(measured.measured_mu),
                  measured_table(measured.measured_xi), sweep);
  std::printf("%s", sweep.render().c_str());

  if (measured_design.feasible) {
    std::printf("\n==> feasible: buffer %zu gives loss %.4g <= epsilon\n",
                measured_design.buffer, measured_design.loss);
  } else {
    // --- Step 3: redesign with slower degradation and compare.
    std::printf("\nnot feasible (best loss %.4g); step 3: redesign algorithms\n",
                measured_design.loss);
    util::Table redesign({"buffer", "loss probability", "meets epsilon"});
    redesign.set_precision(4);
    const auto alt = size_buffer(lambda, epsilon, mu1, xi1, ctmc::power_decay(0.5),
                                 ctmc::power_decay(0.5), redesign);
    std::printf("%s", redesign.render().c_str());
    std::printf("==> sqrt-degradation design: buffer %zu loss %.4g (%s)\n",
                alt.buffer, alt.loss, alt.feasible ? "feasible" : "still infeasible");
  }

  // --- Step 4: size the alert buffer for a burst at 3x the design rate.
  std::printf("%s", util::banner("step 4: transient check under a 3x burst").c_str());
  ctmc::RecoveryStgConfig burst;
  burst.lambda = 3 * lambda;
  burst.mu1 = mu1;
  burst.xi1 = xi1;
  burst.f = measured_table(measured.measured_mu);
  burst.g = measured_table(measured.measured_xi);
  burst.alert_buffer = std::max<std::size_t>(measured_design.buffer, 4);
  burst.recovery_buffer = burst.alert_buffer;
  const ctmc::RecoveryStg stg(burst);
  util::Table transient({"t", "loss probability", "P(NORMAL)"});
  transient.set_precision(4);
  ctmc::Vector pi = stg.start_normal();
  double previous = 0;
  double resist_until = 0;
  for (double t = 1; t <= 20; t += 1) {
    pi = stg.chain().transient_step(pi, 1.0);
    const double loss = stg.loss_probability(pi);
    transient.add(t, loss, stg.normal_probability(pi));
    if (previous < 0.05 && loss >= 0.05) resist_until = t;
    previous = loss;
  }
  std::printf("%s", transient.render().c_str());
  if (resist_until > 0) {
    std::printf("==> the system resists a 3x burst for ~%.0f time units before "
                "losing alerts\n", resist_until);
  } else {
    std::printf("==> the system absorbs a 3x burst without noticeable loss\n");
  }
  return 0;
}
