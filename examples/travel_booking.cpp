// Travel-booking scenario (the paper's second motivating example: "the
// attacker may schedule a travel with forged credit card information").
//
// A booking workflow authorizes a credit card and branches on the
// result: the approved leg books a flight and a hotel, the declined leg
// records a refusal. The attacker forges the card-authorization task,
// pushing execution down the approved leg. Recovery must undo the
// bookings (tasks that ran but should never have run -- candidate undos
// resolved as orphans), execute the declined leg fresh, and repair the
// invoicing that read the bogus charge.
//
//   $ ./travel_booking
#include <cstdio>
#include <set>
#include <string>

#include "selfheal/recovery/analyzer.hpp"
#include "selfheal/recovery/correctness.hpp"
#include "selfheal/recovery/scheduler.hpp"
#include "selfheal/wfspec/workflow_spec.hpp"

using namespace selfheal;

namespace {
std::string name_of(const engine::Engine& eng, engine::InstanceId id) {
  const auto& e = eng.log().entry(id);
  return eng.spec_of(e.run).task(e.task).name;
}
}  // namespace

int main() {
  wfspec::ObjectCatalog catalog;

  wfspec::WorkflowSpec booking("booking", catalog);
  const auto submit = booking.add_task("submit_card", {}, {"card"});
  const auto authorize_task = booking.add_task("authorize", {"card"}, {"auth"});
  const auto decide = booking.add_task("decide", {"auth"}, {"charge"});
  const auto flight = booking.add_task("book_flight", {"charge"}, {"flight_res"});
  const auto hotel = booking.add_task("book_hotel", {"charge", "flight_res"},
                                      {"hotel_res"});
  const auto decline = booking.add_task("decline", {"auth"}, {"refusal"});
  const auto confirm = booking.add_task("confirm",
                                        {"flight_res", "hotel_res", "refusal"},
                                        {"confirmation"});
  booking.add_edge(submit, authorize_task);
  booking.add_edge(authorize_task, decide);
  booking.add_edge(decide, flight);   // approved leg
  booking.add_edge(decide, decline);  // declined leg
  booking.add_edge(flight, hotel);
  booking.add_edge(hotel, confirm);
  booking.add_edge(decline, confirm);
  booking.validate();

  wfspec::WorkflowSpec invoicing("invoicing", catalog);
  const auto collect = invoicing.add_task("collect", {"charge"}, {"invoice"});
  const auto post = invoicing.add_task("post", {"invoice"}, {"receivables"});
  invoicing.add_edge(collect, post);
  invoicing.validate();

  // The attacker forges the card authorization.
  engine::Engine eng;
  const auto r_booking = eng.start_run(booking);
  eng.start_run(invoicing);
  eng.inject_malicious(r_booking, authorize_task);
  eng.run_all();

  std::printf("attacked log:\n  %s\n\n", eng.log().render(eng.specs_by_run()).c_str());

  engine::InstanceId forged = engine::kInvalidInstance;
  for (const auto& e : eng.log().entries()) {
    if (e.kind == engine::ActionKind::kMalicious) forged = e.id;
  }

  const recovery::RecoveryAnalyzer analyzer(eng);
  const auto plan = analyzer.analyze({forged});
  std::printf("%s\n", plan.describe(eng.log(), eng.specs_by_run()).c_str());

  recovery::RecoveryScheduler scheduler(eng);
  const auto outcome = scheduler.execute(plan);

  std::printf("orphaned (bookings that should never have happened):");
  for (const auto id : outcome.orphaned) {
    std::printf(" %s", name_of(eng, id).c_str());
  }
  std::printf("\nfresh (the leg the clean decision takes):");
  for (const auto id : outcome.fresh_entries) {
    std::printf(" %s", name_of(eng, id).c_str());
  }
  std::printf("\ndivergences: %zu\n\n", outcome.divergences);

  std::printf("repaired log:\n  %s\n\n", eng.log().render(eng.specs_by_run()).c_str());

  const recovery::CorrectnessChecker checker(eng);
  const auto report = checker.check();
  std::printf("strict correct: %s (%s)\n", report.strict_correct() ? "YES" : "NO",
              report.summary.c_str());
  return report.strict_correct() ? 0 : 1;
}
