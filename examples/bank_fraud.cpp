// Bank-fraud scenario (the paper's first motivating example: "an
// attacker may forge bank transactions to steal money from accounts of
// others").
//
// Three transfer workflows (defined in the text DSL) and one audit
// workflow share a ledger. The attacker forges the validation step of
// one transfer; the forged validation corrupts the routing decision and
// the ledger, and the audit workflow is infected through the shared
// objects. The self-healing controller receives the IDS alert, analyzes
// the damage, repairs it, and the oracle confirms the ledger is clean.
//
//   $ ./bank_fraud
#include <cstdio>
#include <string>

#include "selfheal/recovery/controller.hpp"
#include "selfheal/recovery/correctness.hpp"
#include "selfheal/wfspec/parser.hpp"

using namespace selfheal;

namespace {

std::string transfer_dsl(const std::string& name) {
  return "workflow " + name + R"(
task submit writes request
task validate reads request writes approval
task route reads approval writes decision selector approval
task execute_debit reads decision writes ledger
task execute_credit reads ledger decision writes ledger
task reject reads decision writes rejection_log
task notify reads ledger rejection_log writes notice
edge submit validate
edge validate route
edge route execute_debit reject
edge execute_debit execute_credit
edge execute_credit notify
edge reject notify
)";
}

constexpr const char* kAuditDsl = R"(
workflow audit
task open_books reads ledger writes working_set
task reconcile reads working_set ledger writes reconciliation
task report reads reconciliation writes audit_report
edge open_books reconcile
edge reconcile report
)";

}  // namespace

int main() {
  wfspec::ObjectCatalog catalog;

  // Shared catalog: every transfer and the audit touch the same ledger.
  const auto wf_a = wfspec::parse_workflow(transfer_dsl("transfer_alice"), catalog);
  const auto wf_b = wfspec::parse_workflow(transfer_dsl("transfer_bob"), catalog);
  const auto wf_c = wfspec::parse_workflow(transfer_dsl("transfer_carol"), catalog);
  const auto wf_audit = wfspec::parse_workflow(kAuditDsl, catalog);

  engine::Engine eng;
  const auto run_a = eng.start_run(wf_a);
  eng.start_run(wf_b);
  eng.start_run(wf_audit);

  // The attacker forges Alice's validation (stolen credentials).
  eng.inject_malicious(run_a, wf_a.task_by_name("validate"));
  eng.run_all();

  const auto ledger = *catalog.find("ledger");
  std::printf("attacked execution committed %zu task instances\n", eng.log().size());
  std::printf("ledger value after attack: %lld\n",
              static_cast<long long>(eng.store().read(ledger)));

  // The attack is detected only later; meanwhile Carol's transfer and
  // more work arrive. The controller defers them (Theorem 4).
  recovery::SelfHealingController controller(eng);
  engine::InstanceId forged = engine::kInvalidInstance;
  for (const auto& e : eng.log().entries()) {
    if (e.kind == engine::ActionKind::kMalicious) forged = e.id;
  }
  ids::Alert alert;
  alert.malicious.push_back(forged);
  controller.submit_alert(alert);
  std::printf("\nIDS alert submitted; controller state: %s\n",
              recovery::to_string(controller.state()));

  const auto deferred = controller.submit_run(wf_c);
  std::printf("Carol's transfer submitted during SCAN: %s\n",
              deferred ? "started (unexpected!)" : "deferred per Theorem 4");

  const auto work = controller.drain();
  std::printf("recovery drained: %zu work units; state: %s\n", work,
              recovery::to_string(controller.state()));
  std::printf("deferred runs released: %zu runs total, %zu active\n",
              eng.run_count(), eng.active_runs());

  std::printf("ledger value after recovery: %lld\n",
              static_cast<long long>(eng.store().read(ledger)));

  const recovery::CorrectnessChecker checker(eng);
  const auto report = checker.check();
  std::printf("\nstrict correct: %s (%s)\n", report.strict_correct() ? "YES" : "NO",
              report.summary.c_str());

  const auto& stats = controller.stats();
  std::printf("alerts=%zu scans=%zu recoveries=%zu scan_work=%zu recovery_work=%zu\n",
              stats.alerts_received, stats.scans, stats.recoveries, stats.scan_work,
              stats.recovery_work);
  return report.strict_correct() ? 0 : 1;
}
