// Quickstart: the paper's Figure 1, end to end.
//
// Builds the two example workflows, lets an attacker corrupt t1, shows
// how the damage spreads (t2, t4, t8, t10 infected; t2 takes the wrong
// path P1), then runs the recovery analyzer + scheduler and verifies
// strict correctness against the clean-execution oracle.
//
//   $ ./quickstart [--dot]
#include <cstdio>
#include <set>
#include <string>

#include "selfheal/deps/dependency.hpp"
#include "selfheal/graph/dot.hpp"
#include "selfheal/recovery/analyzer.hpp"
#include "selfheal/recovery/correctness.hpp"
#include "selfheal/recovery/scheduler.hpp"
#include "selfheal/util/flags.hpp"
#include "selfheal/wfspec/workflow_spec.hpp"

using namespace selfheal;

namespace {

std::string name_of(const engine::Engine& eng, engine::InstanceId id) {
  const auto& e = eng.log().entry(id);
  return eng.spec_of(e.run).task(e.task).name;
}

// Picks a workflow name whose deterministic task semantics send the
// benign execution down P2 (t5) and the corrupted one down P1 (t3),
// matching the paper's Figure 1 story exactly.
std::string pick_orders_name(wfspec::ObjectCatalog& catalog) {
  const auto o1 = catalog.intern("o1");
  for (int salt = 0;; ++salt) {
    const std::string name = "orders-" + std::to_string(salt);
    const auto clean =
        engine::compute_output(engine::task_seed(name, "t1"), o1, 1, {});
    if (engine::choose_branch(clean, 2) == 1 &&
        engine::choose_branch(engine::corrupt(clean), 2) == 0) {
      return name;
    }
  }
}

void print_ids(const char* label, const engine::Engine& eng,
               const std::vector<engine::InstanceId>& ids) {
  std::printf("%s", label);
  for (const auto id : ids) std::printf(" %s", name_of(eng, id).c_str());
  std::printf("\n");
}

}  // namespace

int main(int argc, char** argv) {
  const util::Flags flags(argc, argv);

  // --- Build the Figure 1 workflows over a shared object catalog.
  wfspec::ObjectCatalog catalog;

  wfspec::WorkflowSpec wf1(pick_orders_name(catalog), catalog);
  const auto t1 = wf1.add_task("t1", {}, {"o1"});
  const auto t2 = wf1.add_task("t2", {"o1"}, {"o2"});
  const auto t3 = wf1.add_task("t3", {"c3"}, {"o3"});
  const auto t4 = wf1.add_task("t4", {"o3", "o2"}, {"o4"});
  const auto t5 = wf1.add_task("t5", {"o2"}, {"o5"});
  const auto t6 = wf1.add_task("t6", {"o5"}, {"o6"});
  wf1.add_edge(t1, t2);
  wf1.add_edge(t2, t3);  // path P1
  wf1.add_edge(t2, t5);  // path P2
  wf1.add_edge(t3, t4);
  wf1.add_edge(t4, t6);
  wf1.add_edge(t5, t6);
  wf1.validate();

  wfspec::WorkflowSpec wf2("audit", catalog);
  const auto t7 = wf2.add_task("t7", {}, {"p1"});
  const auto t8 = wf2.add_task("t8", {"p1", "o1"}, {"p2"});  // shares o1!
  const auto t9 = wf2.add_task("t9", {"p1"}, {"p3"});
  const auto t10 = wf2.add_task("t10", {"p2"}, {"p4"});
  wf2.add_edge(t7, t8);
  wf2.add_edge(t8, t9);
  wf2.add_edge(t9, t10);
  wf2.validate();

  if (flags.get_bool("dot", false)) {
    std::printf("%s\n%s\n", wf1.to_dot().c_str(), wf2.to_dot().c_str());
  }

  // --- Execute with t1 corrupted by the attacker.
  engine::Engine eng;
  const auto r1 = eng.start_run(wf1);
  eng.start_run(wf2);
  eng.inject_malicious(r1, t1);
  eng.run_all();

  std::printf("system log (attacked execution):\n  %s\n\n",
              eng.log().render(eng.specs_by_run()).c_str());

  // --- What did the attack damage? (Theorem 1)
  engine::InstanceId bad = engine::kInvalidInstance;
  for (const auto& e : eng.log().entries()) {
    if (e.kind == engine::ActionKind::kMalicious) bad = e.id;
  }
  std::printf("IDS reports: %s\n", name_of(eng, bad).c_str());

  const recovery::RecoveryAnalyzer analyzer(eng);
  const auto plan = analyzer.analyze({bad});
  print_ids("damaged (undo):     ", eng, plan.damaged);
  std::printf("candidate undos:    ");
  for (const auto& c : plan.candidate_undos) {
    std::printf(" %s(c%d)", name_of(eng, c.instance).c_str(), c.condition);
  }
  std::printf("\n");
  print_ids("definite redos:     ", eng, plan.definite_redos);
  std::printf("candidate redos:    ");
  for (const auto& c : plan.candidate_redos) {
    std::printf(" %s", name_of(eng, c.instance).c_str());
  }
  std::printf("\npartial-order constraints: %zu (Theorem 3)\n\n",
              plan.constraints.size());

  // --- Execute the recovery (Theorem 2 + scheduler).
  recovery::RecoveryScheduler scheduler(eng);
  const auto outcome = scheduler.execute(plan);
  print_ids("undone:   ", eng, outcome.undone);
  print_ids("redone:   ", eng, outcome.redone);
  print_ids("orphaned: ", eng, outcome.orphaned);
  std::printf("fresh executions:");
  for (const auto id : outcome.fresh_entries) {
    std::printf(" %s", name_of(eng, id).c_str());
  }
  std::printf("\nreused untouched: %zu, divergences: %zu\n\n", outcome.reused,
              outcome.divergences);

  std::printf("system log (after recovery):\n  %s\n\n",
              eng.log().render(eng.specs_by_run()).c_str());

  // --- Verify strict correctness (Definition 2).
  const recovery::CorrectnessChecker checker(eng);
  const auto report = checker.check();
  std::printf("strict correct: %s (%s)\n", report.strict_correct() ? "YES" : "NO",
              report.summary.c_str());
  return report.strict_correct() ? 0 : 1;
}
